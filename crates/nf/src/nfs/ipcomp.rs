//! IPComp Gateway: payload classification on the regex accelerator followed
//! by compression on the compression accelerator (the paper's only NF using
//! *two* accelerators, Table 1). Its bottleneck shifts across three
//! resources with traffic — the diagnosis use case of Table 7.

use crate::cost::{CostTracker, PARSE_CYCLES};
use crate::runtime::{NetworkFunction, Verdict};
use yala_rxp::{l7_default_ruleset, Ruleset, ScanReport};
use yala_sim::{ExecutionPattern, ResourceKind};
use yala_traffic::PacketView;

/// The IPComp gateway NF.
#[derive(Debug, Clone)]
pub struct IpCompGateway {
    rules: Ruleset,
    /// Reusable scan scratch: keeps the per-packet hot loop allocation-free.
    scratch: ScanReport,
    /// Index of the `tls_hello` rule (hoisted out of the per-packet path).
    tls_idx: usize,
    compressed: u64,
    bypassed: u64,
}

impl IpCompGateway {
    /// Creates the gateway with the default classification ruleset.
    pub fn new() -> Self {
        let rules = l7_default_ruleset();
        let tls_idx = rules
            .rules()
            .iter()
            .position(|r| r.name == "tls_hello")
            .expect("default ruleset has tls_hello");
        Self {
            scratch: ScanReport::with_rules(rules.len()),
            tls_idx,
            rules,
            compressed: 0,
            bypassed: 0,
        }
    }

    /// Packets routed through compression.
    pub fn compressed(&self) -> u64 {
        self.compressed
    }

    /// Packets that bypassed compression (already-compressed protocols).
    pub fn bypassed(&self) -> u64 {
        self.bypassed
    }
}

impl Default for IpCompGateway {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkFunction for IpCompGateway {
    fn name(&self) -> &'static str {
        "ipcomp"
    }

    fn pattern(&self) -> ExecutionPattern {
        ExecutionPattern::RunToCompletion
    }

    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
        cost.compute(PARSE_CYCLES);
        cost.read_lines(1.0);
        let bytes = pkt.payload_len() as f64;
        // Classify with the regex engine (protocol detection).
        self.rules.scan_into(pkt.payload, &mut self.scratch);
        cost.accel_request(
            ResourceKind::Regex,
            bytes,
            self.scratch.total_matches as f64,
        );
        cost.compute(90.0);
        cost.read_lines(1.0);
        cost.write_lines(1.0);
        // TLS/compressed protocols bypass; everything else is compressed.
        if self.scratch.per_rule[self.tls_idx] > 0 {
            self.bypassed += 1;
        } else {
            cost.accel_request(ResourceKind::Compression, bytes, 0.0);
            cost.compute(60.0);
            cost.read_lines(1.0);
            cost.write_lines(1.0);
            self.compressed += 1;
        }
        // IPComp header rewrite.
        cost.compute(40.0);
        cost.write_lines(1.0);
        Verdict::Forward
    }

    fn wss_bytes(&self) -> f64 {
        // Staging buffers for compression input/output.
        256.0 * 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_traffic::FiveTuple;
    use yala_traffic::Packet;

    fn pkt(payload: Vec<u8>) -> Packet {
        Packet::new(FiveTuple::new(1, 2, 3, 4, 6), payload)
    }

    #[test]
    fn compresses_plain_traffic() {
        let mut gw = IpCompGateway::new();
        let mut cost = CostTracker::new();
        gw.process(pkt(vec![b'q'; 800]).view(), &mut cost);
        assert_eq!(gw.compressed(), 1);
        assert_eq!(cost.accel.len(), 2, "regex then compression");
        assert_eq!(cost.accel[0].kind, ResourceKind::Regex);
        assert_eq!(cost.accel[1].kind, ResourceKind::Compression);
    }

    #[test]
    fn bypasses_tls() {
        let mut gw = IpCompGateway::new();
        let mut payload = b"\x16\x03\x01\x02\x00\x01".to_vec();
        payload.extend_from_slice(&[b'q'; 100]);
        let mut cost = CostTracker::new();
        gw.process(pkt(payload).view(), &mut cost);
        assert_eq!(gw.bypassed(), 1);
        assert_eq!(gw.compressed(), 0);
        assert_eq!(cost.accel.len(), 1, "no compression request for TLS");
    }

    #[test]
    fn uses_both_accelerators_across_traffic() {
        let mut gw = IpCompGateway::new();
        gw.process(pkt(vec![b'q'; 100]).view(), &mut CostTracker::new());
        let mut tls = b"\x16\x03\x01\x02\x00\x01".to_vec();
        tls.extend_from_slice(&[b'q'; 50]);
        gw.process(pkt(tls).view(), &mut CostTracker::new());
        assert_eq!(gw.compressed(), 1);
        assert_eq!(gw.bypassed(), 1);
    }
}
