//! The NF abstraction and the instrumentation harness that turns a real
//! packet-processing run into a [`WorkloadSpec`] for the simulator.
//!
//! NFs implement [`NetworkFunction::process`] with genuine logic (hash
//! tables, tries, payload scans) and charge costs to a
//! [`CostTracker`](crate::cost::CostTracker). [`build_workload`] replays a
//! traffic profile through the NF, averages the measured demands, and emits
//! the simulator workload — so traffic attributes shape resource demand
//! through the actual code path (flow count → table footprint, packet size
//! → bytes touched, MTBR → matches reported).

use crate::cost::{CostTracker, FRAMEWORK_CYCLES, FRAMEWORK_READS, FRAMEWORK_WRITES};
use yala_sim::{ExecutionPattern, ResourceKind, StageDemand, WorkloadSpec};
use yala_traffic::{FiveTuple, Packet, PacketGenerator, TrafficProfile};

/// Default cores per NF (the paper gives every NF two dedicated cores).
pub const DEFAULT_CORES: u32 = 2;
/// Default packets sampled when profiling an NF into a workload.
pub const DEFAULT_SAMPLE_PACKETS: usize = 600;

/// What an NF decides to do with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward the packet (possibly rewritten).
    Forward,
    /// Drop the packet.
    Drop,
}

/// A network function: real packet-processing logic plus cost reporting.
pub trait NetworkFunction {
    /// Stable, lowercase display name (e.g. `"flowstats"`).
    fn name(&self) -> &'static str;

    /// The execution pattern the NF's dataplane uses (§4.2).
    fn pattern(&self) -> ExecutionPattern;

    /// Processes one packet, charging costs to `cost`.
    fn process(&mut self, pkt: &Packet, cost: &mut CostTracker) -> Verdict;

    /// Current working-set footprint of the NF's live data structures.
    fn wss_bytes(&self) -> f64;

    /// Pre-populates per-flow state so steady-state demand is measured
    /// (tables warmed) rather than cold-start insert storms.
    fn warm(&mut self, flows: &[FiveTuple]) {
        let _ = flows;
    }
}

/// Profiles `nf` under `profile` and produces the equivalent simulator
/// workload.
///
/// Runs `sample_packets` packets from a seeded generator through the NF
/// (after warming its tables with the full flow set), averages cycles /
/// cache references / accelerator requests per packet, and adds the
/// framework overhead every Click/DPDK dataplane pays.
pub fn build_workload(
    nf: &mut dyn NetworkFunction,
    profile: TrafficProfile,
    sample_packets: usize,
    seed: u64,
) -> WorkloadSpec {
    assert!(sample_packets > 0, "need at least one sample packet");
    let mut gen = PacketGenerator::new(profile, seed);
    nf.warm(&gen.flows().to_vec());

    let mut cycles = 0.0f64;
    let mut reads = 0.0f64;
    let mut writes = 0.0f64;
    // Per accelerator kind: (requests, bytes, matches).
    let mut accel: Vec<(ResourceKind, f64, f64, f64)> = Vec::new();
    for _ in 0..sample_packets {
        let pkt = gen.next_packet();
        let mut cost = CostTracker::new();
        nf.process(&pkt, &mut cost);
        cycles += cost.cycles;
        reads += cost.reads;
        writes += cost.writes;
        for req in &cost.accel {
            match accel.iter_mut().find(|(k, ..)| *k == req.kind) {
                Some((_, n, b, m)) => {
                    *n += 1.0;
                    *b += req.bytes;
                    *m += req.matches;
                }
                None => accel.push((req.kind, 1.0, req.bytes, req.matches)),
            }
        }
    }
    let n = sample_packets as f64;
    let mut stages = vec![StageDemand::CpuMem {
        cycles_per_pkt: cycles / n + FRAMEWORK_CYCLES,
        cache_refs_per_pkt: (reads + writes) / n + FRAMEWORK_READS + FRAMEWORK_WRITES,
        write_frac: (writes / n + FRAMEWORK_WRITES)
            / ((reads + writes) / n + FRAMEWORK_READS + FRAMEWORK_WRITES),
        wss_bytes: nf.wss_bytes(),
    }];
    for (kind, reqs, bytes, matches) in accel {
        stages.push(StageDemand::Accelerator {
            kind,
            queues: 1,
            reqs_per_pkt: reqs / n,
            bytes_per_req: bytes / reqs,
            matches_per_req: matches / reqs,
        });
    }
    WorkloadSpec::new(nf.name(), DEFAULT_CORES, nf.pattern(), stages)
        .with_packet_bytes(profile.packet_size as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal NF used to validate harness aggregation.
    struct Toy {
        scan: bool,
    }

    impl NetworkFunction for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn pattern(&self) -> ExecutionPattern {
            ExecutionPattern::RunToCompletion
        }
        fn process(&mut self, pkt: &Packet, cost: &mut CostTracker) -> Verdict {
            cost.compute(100.0);
            cost.read_lines(2.0);
            cost.write_lines(1.0);
            if self.scan {
                cost.accel_request(ResourceKind::Regex, pkt.payload_len() as f64, 0.5);
            }
            Verdict::Forward
        }
        fn wss_bytes(&self) -> f64 {
            12_345.0
        }
    }

    #[test]
    fn harness_averages_and_adds_framework_cost() {
        let mut nf = Toy { scan: false };
        let w = build_workload(&mut nf, TrafficProfile::new(100, 256, 0.0), 50, 1);
        assert_eq!(w.stages.len(), 1);
        match &w.stages[0] {
            StageDemand::CpuMem { cycles_per_pkt, cache_refs_per_pkt, wss_bytes, .. } => {
                assert!((*cycles_per_pkt - (100.0 + FRAMEWORK_CYCLES)).abs() < 1e-9);
                assert!(
                    (*cache_refs_per_pkt - (3.0 + FRAMEWORK_READS + FRAMEWORK_WRITES)).abs()
                        < 1e-9
                );
                assert_eq!(*wss_bytes, 12_345.0);
            }
            other => panic!("unexpected stage {other:?}"),
        }
    }

    #[test]
    fn accelerator_requests_become_a_stage() {
        let mut nf = Toy { scan: true };
        let profile = TrafficProfile::new(100, 512, 0.0);
        let w = build_workload(&mut nf, profile, 50, 1);
        assert_eq!(w.stages.len(), 2);
        match &w.stages[1] {
            StageDemand::Accelerator { kind, reqs_per_pkt, bytes_per_req, matches_per_req, .. } => {
                assert_eq!(*kind, ResourceKind::Regex);
                assert!((*reqs_per_pkt - 1.0).abs() < 1e-9);
                assert_eq!(*bytes_per_req, profile.payload_size() as f64);
                assert!((*matches_per_req - 0.5).abs() < 1e-9);
            }
            other => panic!("unexpected stage {other:?}"),
        }
    }

    #[test]
    fn workload_is_deterministic_in_seed() {
        let build = || {
            let mut nf = Toy { scan: true };
            build_workload(&mut nf, TrafficProfile::default(), 30, 9)
        };
        assert_eq!(build(), build());
    }
}
