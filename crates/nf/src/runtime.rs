//! The NF abstraction and the instrumentation harness that turns a real
//! packet-processing run into a [`WorkloadSpec`] for the simulator.
//!
//! NFs implement [`NetworkFunction::process`] over borrowed
//! [`PacketView`]s with genuine logic (hash tables, tries, payload scans)
//! and charge costs to a [`CostTracker`]. The
//! measurement dataplane is batched and allocation-free: a [`Profiler`]
//! streams a traffic profile through [`NetworkFunction::process_batch`]
//! one reusable [`PacketBatch`] arena at a time, folds the measured
//! demand into a [`CostAggregate`], and emits the simulator workload — so
//! traffic attributes shape resource demand through the actual code path
//! (flow count → table footprint, packet size → bytes touched, MTBR →
//! matches reported).
//!
//! Three harness entry points exist, from fastest to slowest:
//!
//! * [`build_workload`] — the batched dataplane (the default everywhere).
//! * [`build_workload_per_packet`] — same packets, processed one view at a
//!   time with a fresh tracker per packet: the parity oracle proving the
//!   batched path changes nothing (`tests/batched_parity.rs`).
//! * [`build_workload_legacy`] — the original scalar dataplane (owned
//!   `Packet` + per-byte payload synthesis per packet): the baseline side
//!   of the scalar-vs-batched microbenchmark.

use crate::cost::{
    safe_div, CostAggregate, CostTracker, FRAMEWORK_CYCLES, FRAMEWORK_READS, FRAMEWORK_WRITES,
};
use yala_sim::{ExecutionPattern, StageDemand, WorkloadSpec};
use yala_traffic::{FiveTuple, PacketBatch, PacketGenerator, PacketView, TrafficProfile};

/// Default cores per NF (the paper gives every NF two dedicated cores).
pub const DEFAULT_CORES: u32 = 2;
/// Default packets sampled when profiling an NF into a workload.
pub const DEFAULT_SAMPLE_PACKETS: usize = 600;
/// Default packets per arena refill in the batched dataplane.
pub const DEFAULT_BATCH_PACKETS: usize = 64;

/// What an NF decides to do with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward the packet (possibly rewritten).
    Forward,
    /// Drop the packet.
    Drop,
}

/// A network function: real packet-processing logic plus cost reporting.
pub trait NetworkFunction {
    /// Stable, lowercase display name (e.g. `"flowstats"`).
    fn name(&self) -> &'static str;

    /// The execution pattern the NF's dataplane uses (§4.2).
    fn pattern(&self) -> ExecutionPattern;

    /// Processes one packet, charging costs to `cost`.
    fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict;

    /// Processes a whole batch, charging all costs to one tracker, and
    /// returns how many packets were forwarded. The default implementation
    /// drives [`Self::process`] per view; NFs may override it with an
    /// equivalent vectorised loop, but must charge *identical* costs — the
    /// parity suite holds every implementation to the per-packet oracle.
    fn process_batch(&mut self, batch: &PacketBatch, cost: &mut CostTracker) -> usize {
        let mut forwarded = 0usize;
        for pkt in batch.iter() {
            if self.process(pkt, cost) == Verdict::Forward {
                forwarded += 1;
            }
        }
        forwarded
    }

    /// Current working-set footprint of the NF's live data structures.
    fn wss_bytes(&self) -> f64;

    /// Pre-populates per-flow state so steady-state demand is measured
    /// (tables warmed) rather than cold-start insert storms.
    fn warm(&mut self, flows: &[FiveTuple]) {
        let _ = flows;
    }
}

/// The streaming measurement harness: owns one reusable [`PacketBatch`],
/// one [`CostTracker`], and one [`CostAggregate`], so profiling an NF —
/// and re-profiling it at thousands of traffic points, as the adaptive
/// sweeps do — performs no per-packet allocation at steady state.
#[derive(Debug, Clone)]
pub struct Profiler {
    batch: PacketBatch,
    cost: CostTracker,
    agg: CostAggregate,
    batch_packets: usize,
    framework_overhead: bool,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// A profiler with the default batch size and framework overhead on.
    pub fn new() -> Self {
        Self {
            batch: PacketBatch::new(),
            cost: CostTracker::new(),
            agg: CostAggregate::new(),
            batch_packets: DEFAULT_BATCH_PACKETS,
            framework_overhead: true,
        }
    }

    /// Sets the packets per arena refill.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_batch_packets(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        self.batch_packets = n;
        self
    }

    /// Disables the per-packet framework (RX/TX path) overhead, measuring
    /// the NF's raw demand only. With the overhead off, an NF that charges
    /// nothing yields an all-zero CpuMem stage — the guarded aggregation
    /// keeps `write_frac` at 0 instead of NaN.
    pub fn without_framework_overhead(mut self) -> Self {
        self.framework_overhead = false;
        self
    }

    /// Profiles `nf` under `profile` through the batched dataplane and
    /// produces the equivalent simulator workload.
    ///
    /// Streams `sample_packets` packets from a seeded generator through
    /// [`NetworkFunction::process_batch`] (after warming the NF's tables
    /// with the full flow set), reusing the arena and tracker across
    /// batches, then averages the aggregate demand per packet.
    ///
    /// # Panics
    ///
    /// Panics if `sample_packets` is zero.
    pub fn profile(
        &mut self,
        nf: &mut dyn NetworkFunction,
        profile: TrafficProfile,
        sample_packets: usize,
        seed: u64,
    ) -> WorkloadSpec {
        assert!(sample_packets > 0, "need at least one sample packet");
        let mut gen = PacketGenerator::new(profile, seed);
        nf.warm(gen.flows());
        self.agg.reset();
        let mut remaining = sample_packets;
        while remaining > 0 {
            let n = remaining.min(self.batch_packets);
            gen.fill_batch(&mut self.batch, n);
            self.cost.reset();
            nf.process_batch(&self.batch, &mut self.cost);
            self.agg.absorb(&self.cost, n);
            remaining -= n;
        }
        finish_workload(nf, profile, &self.agg, self.framework_overhead)
    }
}

/// Turns a cost aggregate into the simulator workload for `nf`. Every
/// per-packet / per-request average is computed with a guarded division:
/// an NF that reports zero cache references (possible with framework
/// overhead disabled) or zero-byte accelerator requests must produce
/// finite zeros, not NaN.
fn finish_workload(
    nf: &dyn NetworkFunction,
    profile: TrafficProfile,
    agg: &CostAggregate,
    framework_overhead: bool,
) -> WorkloadSpec {
    let n = agg.packets;
    debug_assert!(n > 0.0, "aggregate must cover at least one packet");
    let (fw_cycles, fw_reads, fw_writes) = if framework_overhead {
        (FRAMEWORK_CYCLES, FRAMEWORK_READS, FRAMEWORK_WRITES)
    } else {
        (0.0, 0.0, 0.0)
    };
    let refs_per_pkt = (agg.reads + agg.writes) / n + fw_reads + fw_writes;
    let writes_per_pkt = agg.writes / n + fw_writes;
    let mut stages = vec![StageDemand::CpuMem {
        cycles_per_pkt: agg.cycles / n + fw_cycles,
        cache_refs_per_pkt: refs_per_pkt,
        write_frac: safe_div(writes_per_pkt, refs_per_pkt),
        wss_bytes: nf.wss_bytes(),
    }];
    for &(kind, reqs, bytes, matches) in &agg.accel {
        stages.push(StageDemand::Accelerator {
            kind,
            queues: 1,
            reqs_per_pkt: reqs / n,
            bytes_per_req: safe_div(bytes, reqs),
            matches_per_req: safe_div(matches, reqs),
        });
    }
    WorkloadSpec::new(nf.name(), DEFAULT_CORES, nf.pattern(), stages)
        .with_packet_bytes(profile.packet_size as f64)
}

/// Profiles `nf` under `profile` and produces the equivalent simulator
/// workload via the batched dataplane (a fresh [`Profiler`] per call;
/// sweeps that profile repeatedly should hold their own `Profiler` and
/// call [`Profiler::profile`] to reuse its buffers).
pub fn build_workload(
    nf: &mut dyn NetworkFunction,
    profile: TrafficProfile,
    sample_packets: usize,
    seed: u64,
) -> WorkloadSpec {
    Profiler::new().profile(nf, profile, sample_packets, seed)
}

/// The per-packet parity oracle: identical packets (same generator, same
/// arena fill), but processed one [`PacketView`] at a time with a fresh
/// [`CostTracker`] per packet — the pre-batching aggregation semantics.
/// Must produce byte-identical [`WorkloadSpec`]s to [`build_workload`];
/// the integration suite asserts this for every NF kind.
pub fn build_workload_per_packet(
    nf: &mut dyn NetworkFunction,
    profile: TrafficProfile,
    sample_packets: usize,
    seed: u64,
) -> WorkloadSpec {
    assert!(sample_packets > 0, "need at least one sample packet");
    let mut gen = PacketGenerator::new(profile, seed);
    nf.warm(gen.flows());
    let mut agg = CostAggregate::new();
    let mut batch = PacketBatch::new();
    let mut remaining = sample_packets;
    while remaining > 0 {
        let n = remaining.min(DEFAULT_BATCH_PACKETS);
        gen.fill_batch(&mut batch, n);
        for pkt in batch.iter() {
            let mut cost = CostTracker::new();
            nf.process(pkt, &mut cost);
            agg.absorb(&cost, 1);
        }
        remaining -= n;
    }
    finish_workload(nf, profile, &agg, true)
}

/// The original scalar dataplane, kept as the microbenchmark baseline: one
/// owned [`Packet`](yala_traffic::Packet) heap allocation per generated
/// packet, per-byte payload synthesis, and a fresh tracker per packet.
pub fn build_workload_legacy(
    nf: &mut dyn NetworkFunction,
    profile: TrafficProfile,
    sample_packets: usize,
    seed: u64,
) -> WorkloadSpec {
    assert!(sample_packets > 0, "need at least one sample packet");
    let mut gen = PacketGenerator::new(profile, seed);
    nf.warm(gen.flows());
    let mut agg = CostAggregate::new();
    for _ in 0..sample_packets {
        let pkt = gen.next_packet();
        let mut cost = CostTracker::new();
        nf.process(pkt.view(), &mut cost);
        agg.absorb(&cost, 1);
    }
    finish_workload(nf, profile, &agg, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_sim::ResourceKind;

    /// Minimal NF used to validate harness aggregation.
    struct Toy {
        scan: bool,
    }

    impl NetworkFunction for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn pattern(&self) -> ExecutionPattern {
            ExecutionPattern::RunToCompletion
        }
        fn process(&mut self, pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
            cost.compute(100.0);
            cost.read_lines(2.0);
            cost.write_lines(1.0);
            if self.scan {
                cost.accel_request(ResourceKind::Regex, pkt.payload_len() as f64, 0.5);
            }
            Verdict::Forward
        }
        fn wss_bytes(&self) -> f64 {
            12_345.0
        }
    }

    /// An NF that charges nothing at all — the zero-denominator case.
    struct Silent;

    impl NetworkFunction for Silent {
        fn name(&self) -> &'static str {
            "silent"
        }
        fn pattern(&self) -> ExecutionPattern {
            ExecutionPattern::RunToCompletion
        }
        fn process(&mut self, _pkt: PacketView<'_>, _cost: &mut CostTracker) -> Verdict {
            Verdict::Forward
        }
        fn wss_bytes(&self) -> f64 {
            0.0
        }
    }

    /// An NF that issues only zero-byte accelerator requests.
    struct ZeroByteScan;

    impl NetworkFunction for ZeroByteScan {
        fn name(&self) -> &'static str {
            "zeroscan"
        }
        fn pattern(&self) -> ExecutionPattern {
            ExecutionPattern::Pipeline
        }
        fn process(&mut self, _pkt: PacketView<'_>, cost: &mut CostTracker) -> Verdict {
            cost.accel_request(ResourceKind::Regex, 0.0, 0.0);
            Verdict::Forward
        }
        fn wss_bytes(&self) -> f64 {
            0.0
        }
    }

    fn cpu_stage(w: &WorkloadSpec) -> (f64, f64, f64, f64) {
        match &w.stages[0] {
            StageDemand::CpuMem {
                cycles_per_pkt,
                cache_refs_per_pkt,
                write_frac,
                wss_bytes,
            } => (
                *cycles_per_pkt,
                *cache_refs_per_pkt,
                *write_frac,
                *wss_bytes,
            ),
            other => panic!("unexpected stage {other:?}"),
        }
    }

    #[test]
    fn harness_averages_and_adds_framework_cost() {
        let mut nf = Toy { scan: false };
        let w = build_workload(&mut nf, TrafficProfile::new(100, 256, 0.0), 50, 1);
        assert_eq!(w.stages.len(), 1);
        let (cycles, refs, _, wss) = cpu_stage(&w);
        assert!((cycles - (100.0 + FRAMEWORK_CYCLES)).abs() < 1e-9);
        assert!((refs - (3.0 + FRAMEWORK_READS + FRAMEWORK_WRITES)).abs() < 1e-9);
        assert_eq!(wss, 12_345.0);
    }

    #[test]
    fn accelerator_requests_become_a_stage() {
        let mut nf = Toy { scan: true };
        let profile = TrafficProfile::new(100, 512, 0.0);
        let w = build_workload(&mut nf, profile, 50, 1);
        assert_eq!(w.stages.len(), 2);
        match &w.stages[1] {
            StageDemand::Accelerator {
                kind,
                reqs_per_pkt,
                bytes_per_req,
                matches_per_req,
                ..
            } => {
                assert_eq!(*kind, ResourceKind::Regex);
                assert!((*reqs_per_pkt - 1.0).abs() < 1e-9);
                assert_eq!(*bytes_per_req, profile.payload_size() as f64);
                assert!((*matches_per_req - 0.5).abs() < 1e-9);
            }
            other => panic!("unexpected stage {other:?}"),
        }
    }

    #[test]
    fn workload_is_deterministic_in_seed() {
        let build = || {
            let mut nf = Toy { scan: true };
            build_workload(&mut nf, TrafficProfile::default(), 30, 9)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn batched_equals_per_packet_oracle() {
        for scan in [false, true] {
            let batched = build_workload(
                &mut Toy { scan },
                TrafficProfile::new(500, 800, 400.0),
                120,
                3,
            );
            let oracle = build_workload_per_packet(
                &mut Toy { scan },
                TrafficProfile::new(500, 800, 400.0),
                120,
                3,
            );
            assert_eq!(batched, oracle, "scan={scan}");
        }
    }

    #[test]
    fn batch_size_does_not_change_the_workload() {
        let at = |packets_per_batch: usize| {
            Profiler::new()
                .with_batch_packets(packets_per_batch)
                .profile(
                    &mut Toy { scan: true },
                    TrafficProfile::new(300, 700, 500.0),
                    97,
                    11,
                )
        };
        let reference = at(DEFAULT_BATCH_PACKETS);
        for b in [1, 7, 97, 128] {
            assert_eq!(at(b), reference, "batch size {b}");
        }
    }

    #[test]
    fn default_process_batch_reports_forwarded_count() {
        let mut gen = PacketGenerator::new(TrafficProfile::new(10, 128, 0.0), 1);
        let mut batch = PacketBatch::new();
        gen.fill_batch(&mut batch, 25);
        let mut cost = CostTracker::new();
        assert_eq!(Toy { scan: false }.process_batch(&batch, &mut cost), 25);
        assert_eq!(cost.cycles, 25.0 * 100.0);
    }

    #[test]
    fn silent_nf_yields_finite_zero_write_frac() {
        // Regression: with framework overhead disabled the write-fraction
        // denominator is zero; the old aggregation produced NaN here.
        let w = Profiler::new().without_framework_overhead().profile(
            &mut Silent,
            TrafficProfile::new(100, 256, 0.0),
            40,
            1,
        );
        let (cycles, refs, write_frac, _) = cpu_stage(&w);
        assert_eq!(cycles, 0.0);
        assert_eq!(refs, 0.0);
        assert_eq!(write_frac, 0.0, "guarded division must yield 0, not NaN");
        assert!(write_frac.is_finite());
    }

    #[test]
    fn zero_byte_accel_requests_yield_finite_averages() {
        // Regression: zero-byte requests must not poison the per-request
        // averages with NaN.
        let w = build_workload(&mut ZeroByteScan, TrafficProfile::new(100, 256, 0.0), 40, 1);
        match &w.stages[1] {
            StageDemand::Accelerator {
                reqs_per_pkt,
                bytes_per_req,
                matches_per_req,
                ..
            } => {
                assert!((*reqs_per_pkt - 1.0).abs() < 1e-9);
                assert_eq!(*bytes_per_req, 0.0);
                assert_eq!(*matches_per_req, 0.0);
                assert!(bytes_per_req.is_finite() && matches_per_req.is_finite());
            }
            other => panic!("unexpected stage {other:?}"),
        }
    }

    #[test]
    fn legacy_path_still_measures_the_same_demand_shape() {
        // The legacy scalar dataplane uses a different payload synthesis
        // stream, so specs are not bit-identical — but the measured demand
        // must agree closely (same NF, same profile, same costs per op).
        let profile = TrafficProfile::new(200, 512, 0.0);
        let batched = build_workload(&mut Toy { scan: false }, profile, 200, 5);
        let legacy = build_workload_legacy(&mut Toy { scan: false }, profile, 200, 5);
        let (bc, br, ..) = cpu_stage(&batched);
        let (lc, lr, ..) = cpu_stage(&legacy);
        assert!((bc - lc).abs() / lc < 1e-6, "{bc} vs {lc}");
        assert!((br - lr).abs() / lr < 1e-6, "{br} vs {lr}");
    }
}
