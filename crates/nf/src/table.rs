//! Open-addressing flow table used by the stateful NFs.
//!
//! The table is a real data structure (linear probing, power-of-two
//! capacity, resize at 75% load) whose probe counts feed the cost model and
//! whose footprint drives the working-set size — this is exactly the
//! mechanism the paper identifies behind flow-count sensitivity: *"traffic
//! attributes usually affect performance by changing the size of key data
//! structures in the NF processing logic"* (§5.2).

/// An open-addressing hash table keyed by 64-bit flow hashes.
///
/// # Example
///
/// ```
/// use yala_nf::table::FlowTable;
/// let mut t: FlowTable<u32> = FlowTable::new(64);
/// let probes = t.insert(42, 7);
/// assert!(probes >= 1);
/// let (v, _probes) = t.get_mut(42);
/// assert_eq!(v.copied(), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct FlowTable<V> {
    slots: Vec<Option<(u64, V)>>,
    len: usize,
    /// Modelled bytes one entry occupies on the NIC (key + value + metadata).
    entry_bytes: f64,
}

impl<V> FlowTable<V> {
    /// Default modelled entry footprint (one cache line).
    pub const DEFAULT_ENTRY_BYTES: f64 = 64.0;

    /// Creates a table with capacity for at least `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self::with_entry_bytes(capacity, Self::DEFAULT_ENTRY_BYTES)
    }

    /// Creates a table whose entries model `entry_bytes` of footprint each.
    ///
    /// # Panics
    ///
    /// Panics if `entry_bytes` is not positive.
    pub fn with_entry_bytes(capacity: usize, entry_bytes: f64) -> Self {
        assert!(entry_bytes > 0.0, "entry bytes must be positive");
        let cap = capacity.max(8).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || None);
        Self {
            slots,
            len: 0,
            entry_bytes,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Modelled working-set footprint: live entries plus the slot array's
    /// occupancy metadata.
    pub fn wss_bytes(&self) -> f64 {
        self.len as f64 * self.entry_bytes + self.slots.len() as f64 * 8.0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Looks up `key`, returning the value (if present) and the number of
    /// slots probed — each probe is one cache-line touch.
    pub fn get_mut(&mut self, key: u64) -> (Option<&mut V>, usize) {
        let mask = self.mask();
        let mut idx = (key as usize) & mask;
        let mut probes = 1usize;
        loop {
            match &self.slots[idx] {
                Some((k, _)) if *k == key => {
                    // Re-borrow mutably (NLL workaround-free shape).
                    let slot = self.slots[idx].as_mut().expect("checked above");
                    return (Some(&mut slot.1), probes);
                }
                Some(_) => {
                    idx = (idx + 1) & mask;
                    probes += 1;
                    debug_assert!(probes <= self.slots.len(), "table full during probe");
                }
                None => return (None, probes),
            }
        }
    }

    /// Inserts or overwrites `key`, returning the number of probes.
    /// Resizes (rehash) at 75% load.
    pub fn insert(&mut self, key: u64, value: V) -> usize {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.mask();
        let mut idx = (key as usize) & mask;
        let mut probes = 1usize;
        loop {
            match &mut self.slots[idx] {
                Some((k, v)) if *k == key => {
                    *v = value;
                    return probes;
                }
                Some(_) => {
                    idx = (idx + 1) & mask;
                    probes += 1;
                }
                slot @ None => {
                    *slot = Some((key, value));
                    self.len += 1;
                    return probes;
                }
            }
        }
    }

    /// Removes `key` if present, returning the value and probes. Uses
    /// backward-shift deletion to keep probe chains intact.
    pub fn remove(&mut self, key: u64) -> (Option<V>, usize) {
        let mask = self.mask();
        let mut idx = (key as usize) & mask;
        let mut probes = 1usize;
        loop {
            match &self.slots[idx] {
                Some((k, _)) if *k == key => break,
                Some(_) => {
                    idx = (idx + 1) & mask;
                    probes += 1;
                }
                None => return (None, probes),
            }
        }
        let (_, value) = self.slots[idx].take().expect("found above");
        self.len -= 1;
        // Backward-shift: re-place the cluster after the hole.
        let mut next = (idx + 1) & mask;
        while let Some((k, _)) = &self.slots[next] {
            let home = (*k as usize) & mask;
            let hole_reachable = in_probe_range(home, next, idx, mask);
            if hole_reachable {
                self.slots[idx] = self.slots[next].take();
                idx = next;
            }
            next = (next + 1) & mask;
            probes += 1;
        }
        (Some(value), probes)
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let mut new_slots: Vec<Option<(u64, V)>> = Vec::with_capacity(new_cap);
        new_slots.resize_with(new_cap, || None);
        let old = std::mem::replace(&mut self.slots, new_slots);
        self.len = 0;
        for slot in old.into_iter().flatten() {
            let (k, v) = slot;
            // Direct reinsert without another grow (capacity doubled).
            let mask = self.mask();
            let mut idx = (k as usize) & mask;
            while self.slots[idx].is_some() {
                idx = (idx + 1) & mask;
            }
            self.slots[idx] = Some((k, v));
            self.len += 1;
        }
    }
}

/// Whether moving the entry at `pos` (whose home slot is `home`) into the
/// hole at `hole` keeps it reachable by linear probing.
fn in_probe_range(home: usize, pos: usize, hole: usize, mask: usize) -> bool {
    // Distances measured forward (wrapping) from home.
    let d_pos = pos.wrapping_sub(home) & mask;
    let d_hole = hole.wrapping_sub(home) & mask;
    d_hole <= d_pos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t: FlowTable<u64> = FlowTable::new(16);
        for k in 0..100u64 {
            t.insert(k.wrapping_mul(0x9E3779B97F4A7C15), k);
        }
        assert_eq!(t.len(), 100);
        for k in 0..100u64 {
            let (v, _) = t.get_mut(k.wrapping_mul(0x9E3779B97F4A7C15));
            assert_eq!(v.copied(), Some(k));
        }
    }

    #[test]
    fn missing_keys_return_none() {
        let mut t: FlowTable<u8> = FlowTable::new(8);
        t.insert(1, 1);
        let (v, probes) = t.get_mut(2);
        assert!(v.is_none());
        assert!(probes >= 1);
    }

    #[test]
    fn overwrite_does_not_grow_len() {
        let mut t: FlowTable<u8> = FlowTable::new(8);
        t.insert(5, 1);
        t.insert(5, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_mut(5).0.copied(), Some(2));
    }

    #[test]
    fn wss_grows_with_entries() {
        let mut t: FlowTable<u32> = FlowTable::with_entry_bytes(1024, 64.0);
        let w0 = t.wss_bytes();
        for k in 0..512u64 {
            t.insert(k * 7919, 0);
        }
        assert!(t.wss_bytes() > w0 + 512.0 * 60.0);
    }

    #[test]
    fn probes_increase_with_load() {
        // Average probes on a nearly-full region exceed those on a sparse one.
        let mut sparse: FlowTable<u8> = FlowTable::new(4096);
        let mut dense: FlowTable<u8> = FlowTable::new(8);
        let mut sparse_probes = 0usize;
        let mut dense_probes = 0usize;
        for k in 0..1000u64 {
            let key = k.wrapping_mul(0x9E3779B97F4A7C15);
            sparse_probes += sparse.insert(key, 0);
            dense_probes += dense.insert(key, 0);
        }
        // dense resized along the way but operated at 75% load.
        assert!(dense_probes >= sparse_probes);
    }

    #[test]
    fn remove_keeps_probe_chains() {
        let mut t: FlowTable<u64> = FlowTable::new(16);
        let keys: Vec<u64> = (0..200u64).map(|k| k.wrapping_mul(0x100000001B3)).collect();
        for &k in &keys {
            t.insert(k, k);
        }
        // Remove every third key, then everything else must still resolve.
        for &k in keys.iter().step_by(3) {
            let (v, _) = t.remove(k);
            assert_eq!(v, Some(k));
        }
        for (i, &k) in keys.iter().enumerate() {
            let expect = if i % 3 == 0 { None } else { Some(k) };
            assert_eq!(t.get_mut(k).0.copied(), expect, "key index {i}");
        }
    }

    #[test]
    fn growth_preserves_contents() {
        let mut t: FlowTable<usize> = FlowTable::new(8);
        for k in 0..10_000u64 {
            t.insert(k.wrapping_mul(0x9E3779B97F4A7C15), k as usize);
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.capacity() >= 10_000);
        let (v, _) = t.get_mut(9_999u64.wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(v.copied(), Some(9_999));
    }
}
