//! Per-packet cost accounting: NFs do real work (hash probes, trie walks,
//! payload scans) and report the hardware cost of each operation through a
//! [`CostTracker`]. The instrumentation harness aggregates these into a
//! [`yala_sim::WorkloadSpec`].

use yala_sim::ResourceKind;

/// Cycles charged per packet by the framework (Click/DPDK RX → TX path,
/// descriptor handling, scheduling) before any NF logic runs.
pub const FRAMEWORK_CYCLES: f64 = 2_800.0;
/// Cache-line references charged per packet by the framework (descriptor
/// rings, packet metadata).
pub const FRAMEWORK_READS: f64 = 12.0;
/// Framework write references per packet.
pub const FRAMEWORK_WRITES: f64 = 6.0;

/// Cycles to parse the Ethernet/IP/TCP headers.
pub const PARSE_CYCLES: f64 = 120.0;
/// Cycles for one 64-bit hash computation.
pub const HASH_CYCLES: f64 = 40.0;
/// Cycles per hash-table probe (compare + branch).
pub const PROBE_CYCLES: f64 = 12.0;
/// Cycles per table-entry update.
pub const UPDATE_CYCLES: f64 = 10.0;
/// Cycles per trie level traversed in LPM lookup.
pub const TRIE_STEP_CYCLES: f64 = 10.0;
/// Cycles to evaluate one ACL rule against a header.
pub const ACL_RULE_CYCLES: f64 = 6.0;
/// Cycles per payload byte for checksum/copy style processing.
pub const PER_BYTE_CYCLES: f64 = 0.75;
/// Bytes per cache line (for converting byte touches to references).
pub const LINE_BYTES: f64 = 64.0;

/// One accelerator request recorded during processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelRequest {
    /// Target accelerator.
    pub kind: ResourceKind,
    /// Payload bytes submitted.
    pub bytes: f64,
    /// Rule matches the request produced (regex only).
    pub matches: f64,
}

/// Accumulates the hardware cost of processing one packet.
///
/// # Example
///
/// ```
/// use yala_nf::cost::CostTracker;
/// let mut c = CostTracker::new();
/// c.compute(100.0);
/// c.read_lines(3.0);
/// c.write_lines(1.0);
/// assert_eq!(c.cycles, 100.0);
/// assert_eq!(c.reads, 3.0);
/// assert_eq!(c.writes, 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostTracker {
    /// Pure compute cycles.
    pub cycles: f64,
    /// Cache-line read references.
    pub reads: f64,
    /// Cache-line write references.
    pub writes: f64,
    /// Accelerator requests issued for this packet.
    pub accel: Vec<AccelRequest>,
}

impl CostTracker {
    /// Fresh tracker for one packet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroes the tracker for reuse, retaining the accelerator-request
    /// buffer's capacity — the batched dataplane charges a whole batch into
    /// one tracker and resets it between batches instead of allocating a
    /// fresh one per packet.
    pub fn reset(&mut self) {
        self.cycles = 0.0;
        self.reads = 0.0;
        self.writes = 0.0;
        self.accel.clear();
    }

    /// Charges pure compute cycles.
    pub fn compute(&mut self, cycles: f64) {
        debug_assert!(cycles >= 0.0);
        self.cycles += cycles;
    }

    /// Charges `n` cache-line reads.
    pub fn read_lines(&mut self, n: f64) {
        debug_assert!(n >= 0.0);
        self.reads += n;
    }

    /// Charges `n` cache-line writes.
    pub fn write_lines(&mut self, n: f64) {
        debug_assert!(n >= 0.0);
        self.writes += n;
    }

    /// Charges a sequential touch of `bytes` payload bytes (read).
    pub fn touch_payload(&mut self, bytes: f64) {
        self.compute(bytes * PER_BYTE_CYCLES);
        self.read_lines((bytes / LINE_BYTES).ceil());
    }

    /// Records a request submitted to a hardware accelerator.
    pub fn accel_request(&mut self, kind: ResourceKind, bytes: f64, matches: f64) {
        debug_assert!(kind != ResourceKind::CpuMem, "CpuMem is not an accelerator");
        self.accel.push(AccelRequest {
            kind,
            bytes,
            matches,
        });
    }

    /// Total cache references (reads + writes).
    pub fn refs(&self) -> f64 {
        self.reads + self.writes
    }
}

/// Running totals of measured cost across a profiling sample, absorbed
/// batch by batch from a reused [`CostTracker`]. All divisions happen here,
/// once, at aggregation time — with guarded denominators, so an NF that
/// reports zero cache references or zero-byte accelerator requests yields
/// zeros rather than NaN (see `runtime::build_workload`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostAggregate {
    /// Packets absorbed so far.
    pub packets: f64,
    /// Total compute cycles.
    pub cycles: f64,
    /// Total cache-line reads.
    pub reads: f64,
    /// Total cache-line writes.
    pub writes: f64,
    /// Per accelerator kind: `(kind, requests, bytes, matches)` totals.
    pub accel: Vec<(ResourceKind, f64, f64, f64)>,
}

impl CostAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroes the aggregate for reuse, retaining buffer capacity.
    pub fn reset(&mut self) {
        self.packets = 0.0;
        self.cycles = 0.0;
        self.reads = 0.0;
        self.writes = 0.0;
        self.accel.clear();
    }

    /// Folds in the cost of `packets` packets charged to `cost`.
    pub fn absorb(&mut self, cost: &CostTracker, packets: usize) {
        self.packets += packets as f64;
        self.cycles += cost.cycles;
        self.reads += cost.reads;
        self.writes += cost.writes;
        for req in &cost.accel {
            match self.accel.iter_mut().find(|(k, ..)| *k == req.kind) {
                Some((_, n, b, m)) => {
                    *n += 1.0;
                    *b += req.bytes;
                    *m += req.matches;
                }
                None => self.accel.push((req.kind, 1.0, req.bytes, req.matches)),
            }
        }
    }
}

/// Division that yields 0 instead of NaN/∞ on a zero denominator — the
/// guard for per-request and per-reference averages of silent NFs.
pub fn safe_div(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut c = CostTracker::new();
        c.compute(10.0);
        c.compute(5.0);
        c.read_lines(2.0);
        c.write_lines(1.0);
        assert_eq!(c.cycles, 15.0);
        assert_eq!(c.refs(), 3.0);
    }

    #[test]
    fn touch_payload_charges_lines_and_cycles() {
        let mut c = CostTracker::new();
        c.touch_payload(130.0);
        assert_eq!(c.reads, 3.0); // ceil(130/64)
        assert!((c.cycles - 130.0 * PER_BYTE_CYCLES).abs() < 1e-12);
    }

    #[test]
    fn accel_requests_recorded() {
        let mut c = CostTracker::new();
        c.accel_request(ResourceKind::Regex, 1000.0, 2.0);
        assert_eq!(c.accel.len(), 1);
        assert_eq!(c.accel[0].kind, ResourceKind::Regex);
        assert_eq!(c.accel[0].matches, 2.0);
    }

    #[test]
    fn reset_zeroes_but_keeps_capacity() {
        let mut c = CostTracker::new();
        c.compute(10.0);
        c.read_lines(1.0);
        c.write_lines(1.0);
        for _ in 0..16 {
            c.accel_request(ResourceKind::Regex, 100.0, 1.0);
        }
        let cap = c.accel.capacity();
        c.reset();
        assert_eq!(c, CostTracker::new());
        assert_eq!(c.accel.capacity(), cap, "reset must not shed capacity");
    }

    #[test]
    fn aggregate_folds_batches() {
        let mut agg = CostAggregate::new();
        let mut c = CostTracker::new();
        c.compute(10.0);
        c.read_lines(4.0);
        c.accel_request(ResourceKind::Regex, 100.0, 1.0);
        c.accel_request(ResourceKind::Regex, 300.0, 0.0);
        c.accel_request(ResourceKind::Compression, 50.0, 0.0);
        agg.absorb(&c, 2);
        c.reset();
        c.compute(5.0);
        c.write_lines(1.0);
        agg.absorb(&c, 1);
        assert_eq!(agg.packets, 3.0);
        assert_eq!(agg.cycles, 15.0);
        assert_eq!(agg.reads, 4.0);
        assert_eq!(agg.writes, 1.0);
        assert_eq!(agg.accel.len(), 2);
        assert_eq!(agg.accel[0], (ResourceKind::Regex, 2.0, 400.0, 1.0));
        assert_eq!(agg.accel[1], (ResourceKind::Compression, 1.0, 50.0, 0.0));
    }

    #[test]
    fn safe_div_guards_zero_denominator() {
        assert_eq!(safe_div(5.0, 2.0), 2.5);
        assert_eq!(safe_div(5.0, 0.0), 0.0);
        assert_eq!(safe_div(0.0, 0.0), 0.0);
    }
}
