//! # yala-nf — the paper's network functions, implemented for real
//!
//! Every NF from the paper's Table 1 (plus the Pensando Firewall of §8) is
//! implemented with genuine packet-processing logic — open-addressing flow
//! tables, an LPM trie, ACL matching, NAT port allocation, tunnel
//! encapsulation, and payload scanning through the [`yala_rxp`] regex
//! engine. NFs charge hardware costs (cycles, cache-line references,
//! accelerator requests) to a [`cost::CostTracker`] while they work, and
//! the [`runtime::Profiler`] harness streams a profiled run — batch by
//! batch through one reusable [`PacketBatch`] arena, with no per-packet
//! allocation — into a [`yala_sim::WorkloadSpec`] for the SmartNIC
//! simulator.
//!
//! That measurement path is what makes traffic attributes *causal* here,
//! as on real hardware: more flows grow the tables (working-set size →
//! cache pressure), bigger packets mean more bytes touched and scanned,
//! higher MTBR means more regex matches per request (→ longer accelerator
//! service times, the paper's Eq. 4).
//!
//! The [`bench`](mod@bench) module provides the synthetic contention
//! generators
//! (`mem-bench`, `regex-bench`, `compression-bench`) of §6 and the
//! synthetic NF1/NF2/regex-NF workloads of Figs. 2b/4/5 and Table 4.
//!
//! # Example
//!
//! ```
//! use yala_nf::NfKind;
//! use yala_sim::{NicSpec, Simulator};
//! use yala_traffic::TrafficProfile;
//!
//! // Profile FlowStats under the default traffic profile and run it solo.
//! let workload = NfKind::FlowStats.workload(TrafficProfile::default(), 42);
//! let mut sim = Simulator::new(NicSpec::bluefield2());
//! let outcome = sim.solo(&workload);
//! assert!(outcome.throughput_pps > 100_000.0);
//! ```

pub mod bench;
pub mod cost;
pub mod nfs;
pub mod registry;
pub mod runtime;
pub mod table;

pub use registry::NfKind;
pub use runtime::{build_workload, NetworkFunction, Profiler, Verdict};
pub use yala_traffic::{Packet, PacketBatch, PacketView};
