//! Multi-pattern rulesets: the software analogue of a compiled RXP ruleset.
//!
//! The paper's regex NFs all use the same L7-filter rule set (\[5\] in the
//! paper). [`l7_default_ruleset`] ships a representative subset of
//! application-protocol signatures in the style of L7-filter, chosen so the
//! traffic generator can plant matches at a controlled MTBR.

use crate::dfa::MAX_DFA_STATES;
use crate::fused::{FusedScanner, RuleNfa};
use crate::regex::{compile_parts, CompileRegexError, Regex};
use std::sync::Arc;

/// One named rule of a ruleset.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Protocol/attack name, e.g. `"http"`.
    pub name: String,
    /// Compiled pattern.
    pub regex: Regex,
}

/// A compiled multi-pattern ruleset.
///
/// Scanning runs on a *fused* multi-pattern DFA (see [`crate::fused`]):
/// all rules whose fusion fits the state budget share one automaton and
/// one O(len) pass; the rest transparently scan with their standalone
/// per-rule DFAs. [`Ruleset::scan`] / [`Ruleset::scan_into`] behave
/// identically whichever strategy was chosen.
///
/// The compiled form is immutable and internally reference-counted, so
/// cloning a `Ruleset` (every regex NF holds one) is O(1) and shares the
/// fused tables.
///
/// # Example
///
/// ```
/// use yala_rxp::l7_default_ruleset;
/// let rules = l7_default_ruleset();
/// let report = rules.scan(b"GET /index.html HTTP/1.1\r\nHost: a\r\n");
/// assert!(report.total_matches >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Ruleset {
    inner: Arc<RulesetInner>,
}

#[derive(Debug)]
struct RulesetInner {
    rules: Vec<Rule>,
    fused: FusedScanner,
}

/// Result of scanning one payload against a [`Ruleset`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Match count per rule, in ruleset order.
    pub per_rule: Vec<usize>,
    /// Sum of all per-rule counts.
    pub total_matches: usize,
    /// Payload length scanned.
    pub bytes_scanned: usize,
}

impl ScanReport {
    /// An empty report sized for `n_rules` rules — the reusable scratch
    /// for [`Ruleset::scan_into`].
    pub fn with_rules(n_rules: usize) -> Self {
        Self {
            per_rule: vec![0; n_rules],
            total_matches: 0,
            bytes_scanned: 0,
        }
    }

    /// Clears the report and resizes it for `n_rules` rules, reusing the
    /// allocation.
    pub fn reset(&mut self, n_rules: usize) {
        self.per_rule.clear();
        self.per_rule.resize(n_rules, 0);
        self.total_matches = 0;
        self.bytes_scanned = 0;
    }

    /// Match-to-byte ratio of this payload in matches per megabyte — the
    /// traffic attribute of §5.1.1 (paper reports matches/MB).
    pub fn mtbr_per_mb(&self) -> f64 {
        if self.bytes_scanned == 0 {
            return 0.0;
        }
        self.total_matches as f64 / self.bytes_scanned as f64 * 1_000_000.0
    }
}

impl Ruleset {
    /// Compiles `(name, pattern)` pairs into a ruleset.
    ///
    /// # Errors
    ///
    /// Returns the first pattern's [`CompileRegexError`] with its name.
    pub fn compile<'a, I>(patterns: I) -> Result<Self, (String, CompileRegexError)>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        Self::compile_with_budget(patterns, MAX_DFA_STATES)
    }

    /// Compiles with an explicit fused-automaton state budget (exposed for
    /// tests and tuning; [`Ruleset::compile`] uses
    /// [`MAX_DFA_STATES`], and budgets are
    /// honoured up to [`MAX_FUSED_BUDGET`](crate::fused::MAX_FUSED_BUDGET)).
    /// Rules that cannot fuse within the budget transparently fall back to
    /// per-rule scanning.
    ///
    /// # Errors
    ///
    /// Returns the first pattern's [`CompileRegexError`] with its name.
    pub fn compile_with_budget<'a, I>(
        patterns: I,
        budget: usize,
    ) -> Result<Self, (String, CompileRegexError)>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut rules = Vec::new();
        let mut nfas = Vec::new();
        for (name, pattern) in patterns {
            let parts = compile_parts(pattern).map_err(|e| (name.to_string(), e))?;
            rules.push(Rule {
                name: name.to_string(),
                regex: parts.regex,
            });
            nfas.push(RuleNfa {
                nfa: parts.nfa,
                anchored_start: parts.anchored_start,
                anchored_end: parts.anchored_end,
            });
        }
        let fused = FusedScanner::build_with_budget(&nfas, budget);
        Ok(Self {
            inner: Arc::new(RulesetInner { rules, fused }),
        })
    }

    /// Scans `payload` against every rule, counting matches.
    ///
    /// Allocates a fresh [`ScanReport`]; hot paths should reuse a scratch
    /// report via [`Ruleset::scan_into`].
    pub fn scan(&self, payload: &[u8]) -> ScanReport {
        let mut report = ScanReport::with_rules(self.len());
        self.scan_into(payload, &mut report);
        report
    }

    /// Scans `payload` into a caller-owned report, allocation-free once
    /// the report has capacity. One fused pass per group plus per-rule
    /// passes for any fallback rules.
    pub fn scan_into(&self, payload: &[u8], report: &mut ScanReport) {
        report.reset(self.len());
        for group in self.inner.fused.groups() {
            group.scan_into(payload, &mut report.per_rule);
        }
        for &ri in self.inner.fused.fallback_rules() {
            report.per_rule[ri as usize] =
                self.inner.rules[ri as usize].regex.count_matches(payload);
        }
        report.total_matches = report.per_rule.iter().sum();
        report.bytes_scanned = payload.len();
    }

    /// Reference scan that runs every rule's standalone DFA — one pass per
    /// rule. This is the oracle the fused-parity suite and the
    /// `ruleset_scan` benches compare against; it is *not* the hot path.
    pub fn scan_per_rule(&self, payload: &[u8]) -> ScanReport {
        let per_rule: Vec<usize> = self
            .inner
            .rules
            .iter()
            .map(|r| r.regex.count_matches(payload))
            .collect();
        let total_matches = per_rule.iter().sum();
        ScanReport {
            per_rule,
            total_matches,
            bytes_scanned: payload.len(),
        }
    }

    /// The rules in order.
    pub fn rules(&self) -> &[Rule] {
        &self.inner.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.inner.rules.len()
    }

    /// Whether the ruleset has no rules.
    pub fn is_empty(&self) -> bool {
        self.inner.rules.is_empty()
    }

    /// Total DFA states across per-rule automata — proxy for accelerator
    /// rule memory.
    pub fn total_states(&self) -> usize {
        self.inner.rules.iter().map(|r| r.regex.state_count()).sum()
    }

    /// Number of rules covered by fused automata (the rest scan per-rule).
    pub fn fused_rule_count(&self) -> usize {
        self.inner.fused.fused_rule_count()
    }

    /// Total product states across the fused automata.
    pub fn fused_state_count(&self) -> usize {
        self.inner.fused.state_count()
    }
}

/// Seed strings that trigger exactly one match of the corresponding default
/// rule when embedded in an otherwise non-matching payload. Used by the
/// traffic generator to plant matches at a target MTBR.
pub fn match_seeds() -> Vec<(&'static str, &'static [u8])> {
    vec![
        ("http", b"GET /idx.html HTTP/1.1"),
        ("ssh", b"SSH-2.0-OpenSSH_8.9"),
        ("smtp", b"220 mail ESMTP ready"),
        ("ftp", b"230 Login successful"),
        ("sip", b"INVITE sip:bob@example SIP/2.0"),
        ("bittorrent", b"\x13BitTorrent protocol"),
        ("dns_mdns", b"_services._dns-sd._udp"),
        ("tls_hello", b"\x16\x03\x01\x02\x00\x01"),
        ("sqli", b"' OR 1=1 --"),
        ("xss", b"<script>alert(1)</script>"),
        ("shell", b"/bin/sh -i 2>&1"),
        ("rtsp", b"RTSP/1.0 200 OK"),
    ]
}

/// A representative L7-filter-style ruleset: application-protocol
/// signatures plus a few intrusion patterns.
///
/// Compiled once per process (the fused automaton build is not free) and
/// returned as an O(1) clone sharing the compiled tables.
///
/// # Panics
///
/// Panics only if the built-in patterns fail to compile (covered by tests).
pub fn l7_default_ruleset() -> Ruleset {
    static DEFAULT: std::sync::OnceLock<Ruleset> = std::sync::OnceLock::new();
    DEFAULT.get_or_init(build_l7_default_ruleset).clone()
}

fn build_l7_default_ruleset() -> Ruleset {
    Ruleset::compile(vec![
        // Protocol signatures (L7-filter style).
        (
            "http",
            r"(?i)(get|post|head|put|delete) /[!-~]* http/1\.[01]",
        ),
        ("ssh", r"(?i)ssh-[12]\.[0-9]"),
        ("smtp", r"(?i)220 [!-~]+ e?smtp"),
        ("ftp", r"(?i)2(20|30) [ -~]*(ftp|login)"),
        ("sip", r"(?i)(invite|register) sip:[!-~]+ sip/2\.0"),
        ("bittorrent", r"(?i)\x13bittorrent protocol"),
        ("dns_mdns", r"_[a-z-]+\._(udp|tcp)"),
        ("tls_hello", r"\x16\x03[\x00-\x03].[\x00-\xff]\x01"),
        // Intrusion patterns (NIDS style).
        ("sqli", r"(?i)' or 1=1"),
        ("xss", r"(?i)<script>[ -~]*</script>"),
        ("shell", r"/bin/(sh|bash) -i"),
        ("rtsp", r"(?i)rtsp/1\.0 [0-9]{3}"),
    ])
    .expect("built-in ruleset must compile")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ruleset_compiles() {
        let rs = l7_default_ruleset();
        assert_eq!(rs.len(), 12);
        assert!(rs.total_states() > 0);
    }

    #[test]
    fn every_seed_triggers_its_rule_exactly_once() {
        let rs = l7_default_ruleset();
        for (name, seed) in match_seeds() {
            let report = rs.scan(seed);
            let idx = rs
                .rules()
                .iter()
                .position(|r| r.name == name)
                .unwrap_or_else(|| panic!("seed references unknown rule {name}"));
            assert_eq!(
                report.per_rule[idx], 1,
                "seed for {name} should match once, got {report:?}"
            );
        }
    }

    #[test]
    fn seeds_do_not_cross_fire_excessively() {
        // A seed may legitimately trip at most its own rule plus one other
        // (e.g. protocol banners overlap), but never many.
        let rs = l7_default_ruleset();
        for (name, seed) in match_seeds() {
            let report = rs.scan(seed);
            assert!(
                report.total_matches <= 2,
                "seed {name} fired {} rules",
                report.total_matches
            );
        }
    }

    #[test]
    fn random_bytes_rarely_match() {
        let rs = l7_default_ruleset();
        // Deterministic pseudo-random filler, printable-range biased like
        // the traffic generator's filler.
        let mut x = 0x12345678u32;
        let payload: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        let report = rs.scan(&payload);
        assert_eq!(
            report.total_matches, 0,
            "noise should not match: {report:?}"
        );
    }

    #[test]
    fn mtbr_computation() {
        let report = ScanReport {
            per_rule: vec![2, 1],
            total_matches: 3,
            bytes_scanned: 1500,
        };
        assert!((report.mtbr_per_mb() - 2000.0).abs() < 1e-9);
        let empty = ScanReport {
            per_rule: vec![],
            total_matches: 0,
            bytes_scanned: 0,
        };
        assert_eq!(empty.mtbr_per_mb(), 0.0);
    }

    #[test]
    fn planting_seeds_scales_matches_linearly() {
        let rs = l7_default_ruleset();
        let seed = b"' OR 1=1 --";
        let mut payload = Vec::new();
        for i in 0..5 {
            payload.extend_from_slice(format!("fill{i}ernoise____").as_bytes());
            payload.extend_from_slice(seed);
        }
        let report = rs.scan(&payload);
        let idx = rs.rules().iter().position(|r| r.name == "sqli").unwrap();
        assert_eq!(report.per_rule[idx], 5);
    }

    #[test]
    fn compile_error_carries_rule_name() {
        let err = Ruleset::compile(vec![("bad", "(unclosed")]).unwrap_err();
        assert_eq!(err.0, "bad");
    }
}
