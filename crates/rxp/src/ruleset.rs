//! Multi-pattern rulesets: the software analogue of a compiled RXP ruleset.
//!
//! The paper's regex NFs all use the same L7-filter rule set ([5] in the
//! paper). [`l7_default_ruleset`] ships a representative subset of
//! application-protocol signatures in the style of L7-filter, chosen so the
//! traffic generator can plant matches at a controlled MTBR.

use crate::regex::{CompileRegexError, Regex};

/// One named rule of a ruleset.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Protocol/attack name, e.g. `"http"`.
    pub name: String,
    /// Compiled pattern.
    pub regex: Regex,
}

/// A compiled multi-pattern ruleset.
///
/// # Example
///
/// ```
/// use yala_rxp::l7_default_ruleset;
/// let rules = l7_default_ruleset();
/// let report = rules.scan(b"GET /index.html HTTP/1.1\r\nHost: a\r\n");
/// assert!(report.total_matches >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Ruleset {
    rules: Vec<Rule>,
}

/// Result of scanning one payload against a [`Ruleset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// Match count per rule, in ruleset order.
    pub per_rule: Vec<usize>,
    /// Sum of all per-rule counts.
    pub total_matches: usize,
    /// Payload length scanned.
    pub bytes_scanned: usize,
}

impl ScanReport {
    /// Match-to-byte ratio of this payload in matches per megabyte — the
    /// traffic attribute of §5.1.1 (paper reports matches/MB).
    pub fn mtbr_per_mb(&self) -> f64 {
        if self.bytes_scanned == 0 {
            return 0.0;
        }
        self.total_matches as f64 / self.bytes_scanned as f64 * 1_000_000.0
    }
}

impl Ruleset {
    /// Compiles `(name, pattern)` pairs into a ruleset.
    ///
    /// # Errors
    ///
    /// Returns the first pattern's [`CompileRegexError`] with its name.
    pub fn compile<'a, I>(patterns: I) -> Result<Self, (String, CompileRegexError)>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut rules = Vec::new();
        for (name, pattern) in patterns {
            let regex = Regex::compile(pattern).map_err(|e| (name.to_string(), e))?;
            rules.push(Rule {
                name: name.to_string(),
                regex,
            });
        }
        Ok(Self { rules })
    }

    /// Scans `payload` against every rule, counting matches.
    pub fn scan(&self, payload: &[u8]) -> ScanReport {
        let per_rule: Vec<usize> = self
            .rules
            .iter()
            .map(|r| r.regex.count_matches(payload))
            .collect();
        let total_matches = per_rule.iter().sum();
        ScanReport {
            per_rule,
            total_matches,
            bytes_scanned: payload.len(),
        }
    }

    /// The rules in order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the ruleset has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Total DFA states across rules — proxy for accelerator rule memory.
    pub fn total_states(&self) -> usize {
        self.rules.iter().map(|r| r.regex.state_count()).sum()
    }
}

/// Seed strings that trigger exactly one match of the corresponding default
/// rule when embedded in an otherwise non-matching payload. Used by the
/// traffic generator to plant matches at a target MTBR.
pub fn match_seeds() -> Vec<(&'static str, &'static [u8])> {
    vec![
        ("http", b"GET /idx.html HTTP/1.1"),
        ("ssh", b"SSH-2.0-OpenSSH_8.9"),
        ("smtp", b"220 mail ESMTP ready"),
        ("ftp", b"230 Login successful"),
        ("sip", b"INVITE sip:bob@example SIP/2.0"),
        ("bittorrent", b"\x13BitTorrent protocol"),
        ("dns_mdns", b"_services._dns-sd._udp"),
        ("tls_hello", b"\x16\x03\x01\x02\x00\x01"),
        ("sqli", b"' OR 1=1 --"),
        ("xss", b"<script>alert(1)</script>"),
        ("shell", b"/bin/sh -i 2>&1"),
        ("rtsp", b"RTSP/1.0 200 OK"),
    ]
}

/// A representative L7-filter-style ruleset: application-protocol
/// signatures plus a few intrusion patterns.
///
/// # Panics
///
/// Panics only if the built-in patterns fail to compile (covered by tests).
pub fn l7_default_ruleset() -> Ruleset {
    Ruleset::compile(vec![
        // Protocol signatures (L7-filter style).
        (
            "http",
            r"(?i)(get|post|head|put|delete) /[!-~]* http/1\.[01]",
        ),
        ("ssh", r"(?i)ssh-[12]\.[0-9]"),
        ("smtp", r"(?i)220 [!-~]+ e?smtp"),
        ("ftp", r"(?i)2(20|30) [ -~]*(ftp|login)"),
        ("sip", r"(?i)(invite|register) sip:[!-~]+ sip/2\.0"),
        ("bittorrent", r"(?i)\x13bittorrent protocol"),
        ("dns_mdns", r"_[a-z-]+\._(udp|tcp)"),
        ("tls_hello", r"\x16\x03[\x00-\x03].[\x00-\xff]\x01"),
        // Intrusion patterns (NIDS style).
        ("sqli", r"(?i)' or 1=1"),
        ("xss", r"(?i)<script>[ -~]*</script>"),
        ("shell", r"/bin/(sh|bash) -i"),
        ("rtsp", r"(?i)rtsp/1\.0 [0-9]{3}"),
    ])
    .expect("built-in ruleset must compile")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ruleset_compiles() {
        let rs = l7_default_ruleset();
        assert_eq!(rs.len(), 12);
        assert!(rs.total_states() > 0);
    }

    #[test]
    fn every_seed_triggers_its_rule_exactly_once() {
        let rs = l7_default_ruleset();
        for (name, seed) in match_seeds() {
            let report = rs.scan(seed);
            let idx = rs
                .rules()
                .iter()
                .position(|r| r.name == name)
                .unwrap_or_else(|| panic!("seed references unknown rule {name}"));
            assert_eq!(
                report.per_rule[idx], 1,
                "seed for {name} should match once, got {report:?}"
            );
        }
    }

    #[test]
    fn seeds_do_not_cross_fire_excessively() {
        // A seed may legitimately trip at most its own rule plus one other
        // (e.g. protocol banners overlap), but never many.
        let rs = l7_default_ruleset();
        for (name, seed) in match_seeds() {
            let report = rs.scan(seed);
            assert!(
                report.total_matches <= 2,
                "seed {name} fired {} rules",
                report.total_matches
            );
        }
    }

    #[test]
    fn random_bytes_rarely_match() {
        let rs = l7_default_ruleset();
        // Deterministic pseudo-random filler, printable-range biased like
        // the traffic generator's filler.
        let mut x = 0x12345678u32;
        let payload: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        let report = rs.scan(&payload);
        assert_eq!(
            report.total_matches, 0,
            "noise should not match: {report:?}"
        );
    }

    #[test]
    fn mtbr_computation() {
        let report = ScanReport {
            per_rule: vec![2, 1],
            total_matches: 3,
            bytes_scanned: 1500,
        };
        assert!((report.mtbr_per_mb() - 2000.0).abs() < 1e-9);
        let empty = ScanReport {
            per_rule: vec![],
            total_matches: 0,
            bytes_scanned: 0,
        };
        assert_eq!(empty.mtbr_per_mb(), 0.0);
    }

    #[test]
    fn planting_seeds_scales_matches_linearly() {
        let rs = l7_default_ruleset();
        let seed = b"' OR 1=1 --";
        let mut payload = Vec::new();
        for i in 0..5 {
            payload.extend_from_slice(format!("fill{i}ernoise____").as_bytes());
            payload.extend_from_slice(seed);
        }
        let report = rs.scan(&payload);
        let idx = rs.rules().iter().position(|r| r.name == "sqli").unwrap();
        assert_eq!(report.per_rule[idx], 5);
    }

    #[test]
    fn compile_error_carries_rule_name() {
        let err = Ruleset::compile(vec![("bad", "(unclosed")]).unwrap_err();
        assert_eq!(err.0, "bad");
    }
}
