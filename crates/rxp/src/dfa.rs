//! Scanning DFA: subset construction over byte classes, specialised for
//! *streaming match counting* — the operation the RXP accelerator performs
//! on packet payloads.
//!
//! The automaton consumes a payload byte-by-byte. For unanchored patterns
//! the start closure is re-injected after every byte so matches may begin at
//! any offset; when an accepting subset is reached the match counter is
//! incremented and the machine resets (leftmost-shortest, non-overlapping
//! counting — one pass, O(len), like hardware).

use crate::classes::ClassSet;
use crate::nfa::Nfa;
use std::collections::HashMap;

/// Upper bound on DFA states; patterns exceeding it fail to compile.
pub const MAX_DFA_STATES: usize = 16_384;

/// Sentinel state id: a match just completed (only used when the pattern is
/// not end-anchored).
const MATCH: u32 = u32::MAX;
/// Sentinel state id: no match can ever complete from here.
const DEAD: u32 = u32::MAX - 1;

/// Error returned when subset construction exceeds [`MAX_DFA_STATES`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfaTooComplexError;

impl std::fmt::Display for DfaTooComplexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pattern expands past {MAX_DFA_STATES} DFA states")
    }
}

impl std::error::Error for DfaTooComplexError {}

/// A compiled scanning DFA. Build with [`ScanDfa::build`]; query with
/// [`ScanDfa::count_matches`] / [`ScanDfa::is_match`].
#[derive(Debug, Clone)]
pub struct ScanDfa {
    /// Byte → equivalence-class index.
    class_of: Vec<u16>,
    n_classes: usize,
    /// Row-major transition table indexed by *premultiplied* state id:
    /// `trans[state_id * n_classes + class]`. Stored targets are themselves
    /// premultiplied (`target_id * n_classes`), so the per-byte step is a
    /// single add + load — no multiply on the hot path. The `MATCH` / `DEAD`
    /// sentinels are stored unscaled and never indexed.
    trans: Vec<u32>,
    /// Premultiplied start state id.
    start: u32,
    /// Per-state accept flag, used only for end-anchored patterns
    /// (indexed by the *unscaled* state id).
    accept_at_eof: Vec<bool>,
    anchored_start: bool,
    anchored_end: bool,
}

impl ScanDfa {
    /// Builds the scanning DFA from an NFA and its anchor flags.
    ///
    /// # Errors
    ///
    /// Returns [`DfaTooComplexError`] if subset construction explodes.
    pub fn build(
        nfa: &Nfa,
        anchored_start: bool,
        anchored_end: bool,
    ) -> Result<Self, DfaTooComplexError> {
        let (class_of, n_classes, class_reps) = byte_classes(&nfa.states);
        let start_closure = nfa.eps_closure(&[nfa.start]);

        let mut subset_ids: HashMap<Vec<usize>, u32> = HashMap::new();
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        let mut trans: Vec<u32> = Vec::new();
        let mut accept_at_eof: Vec<bool> = Vec::new();
        let mut worklist: Vec<u32> = Vec::new();

        let intern = |subset: Vec<usize>,
                      subsets: &mut Vec<Vec<usize>>,
                      trans: &mut Vec<u32>,
                      accept_at_eof: &mut Vec<bool>,
                      worklist: &mut Vec<u32>,
                      subset_ids: &mut HashMap<Vec<usize>, u32>|
         -> Result<u32, DfaTooComplexError> {
            if subset.is_empty() {
                return Ok(DEAD);
            }
            if !anchored_end && subset.contains(&nfa.accept) {
                return Ok(MATCH);
            }
            if let Some(&id) = subset_ids.get(&subset) {
                return Ok(id);
            }
            let id = subsets.len() as u32;
            if subsets.len() >= MAX_DFA_STATES {
                return Err(DfaTooComplexError);
            }
            subset_ids.insert(subset.clone(), id);
            accept_at_eof.push(subset.contains(&nfa.accept));
            subsets.push(subset);
            trans.extend(std::iter::repeat_n(DEAD, n_classes));
            worklist.push(id);
            Ok(id)
        };

        let start = intern(
            start_closure.clone(),
            &mut subsets,
            &mut trans,
            &mut accept_at_eof,
            &mut worklist,
            &mut subset_ids,
        )?;
        debug_assert!(
            start != MATCH,
            "empty-matching patterns are rejected earlier"
        );

        let mut seen = StampSet::new(nfa.len());
        let mut moved: Vec<usize> = Vec::new();
        while let Some(id) = worklist.pop() {
            let subset = subsets[id as usize].clone();
            for class in 0..n_classes {
                let rep = class_reps[class];
                seen.begin();
                moved.clear();
                for &s in &subset {
                    for (cls, t) in &nfa.states[s].on_byte {
                        if cls.contains(rep) && seen.insert(*t) {
                            moved.push(*t);
                        }
                    }
                }
                let mut closed = nfa.eps_closure(&moved);
                if !anchored_start {
                    // Re-inject the start closure so a match may begin at
                    // the next byte.
                    closed = merge_sorted(&closed, &start_closure);
                }
                let target = intern(
                    closed,
                    &mut subsets,
                    &mut trans,
                    &mut accept_at_eof,
                    &mut worklist,
                    &mut subset_ids,
                )?;
                trans[id as usize * n_classes + class] = target;
            }
        }

        // Premultiply state ids by the class count (the regex-automata
        // trick): the scan loop then indexes `trans[state + class]` with no
        // multiply. Sentinels stay unscaled — they are tested, not indexed.
        let nc = n_classes as u32;
        for t in trans.iter_mut() {
            if *t != MATCH && *t != DEAD {
                *t *= nc;
            }
        }

        Ok(Self {
            class_of,
            n_classes,
            trans,
            start: start * nc,
            accept_at_eof,
            anchored_start,
            anchored_end,
        })
    }

    /// Counts non-overlapping, leftmost-shortest matches in `haystack` in a
    /// single pass.
    pub fn count_matches(&self, haystack: &[u8]) -> usize {
        let mut count = 0usize;
        let mut cur = self.start;
        if self.anchored_end {
            // Matches may only complete at end-of-input: just run and test.
            for &b in haystack {
                if cur == DEAD {
                    return 0;
                }
                cur = self.step(cur, b);
            }
            return usize::from(cur != DEAD && self.accept_at_eof[cur as usize / self.n_classes]);
        }
        for &b in haystack {
            cur = self.step(cur, b);
            if cur == MATCH {
                count += 1;
                if self.anchored_start {
                    // Start-anchored patterns match at most once per payload.
                    return count;
                }
                cur = self.start;
            } else if cur == DEAD {
                if self.anchored_start {
                    return count;
                }
                // Unanchored automata re-inject start and cannot die.
                debug_assert!(false, "unanchored scan reached DEAD");
                cur = self.start;
            }
        }
        count
    }

    /// Whether at least one match occurs in `haystack` (early exit).
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        if self.anchored_end {
            return self.count_matches(haystack) > 0;
        }
        let mut cur = self.start;
        for &b in haystack {
            cur = self.step(cur, b);
            if cur == MATCH {
                return true;
            }
            if cur == DEAD {
                return false; // only reachable when start-anchored
            }
        }
        false
    }

    /// One byte step. `state` is a premultiplied id (never a sentinel);
    /// returns the premultiplied target or a sentinel.
    #[inline]
    fn step(&self, state: u32, b: u8) -> u32 {
        self.trans[state as usize + self.class_of[b as usize] as usize]
    }

    /// Number of materialised DFA states (excludes MATCH/DEAD sentinels).
    pub fn state_count(&self) -> usize {
        self.accept_at_eof.len()
    }

    /// Number of byte equivalence classes.
    pub fn class_count(&self) -> usize {
        self.n_classes
    }
}

/// Constant-time "have I seen this index during the current pass" set,
/// cleared in O(1) by bumping an epoch stamp. Replaces the O(n²)
/// `Vec::contains` scans in subset construction (also used by the fused
/// multi-pattern builder, where subsets are much larger).
#[derive(Debug, Clone)]
pub(crate) struct StampSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl StampSet {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    /// Starts a new pass; all indices become "unseen".
    pub(crate) fn begin(&mut self) {
        self.epoch += 1;
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `i` seen; returns `true` if it was not already seen this pass.
    #[inline]
    pub(crate) fn insert(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.epoch {
            false
        } else {
            self.stamp[i] = self.epoch;
            true
        }
    }

    /// Whether `i` has been seen this pass.
    #[inline]
    pub(crate) fn contains(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }
}

/// Computes byte equivalence classes over a state arena: two bytes are
/// equivalent if every NFA transition class treats them identically.
/// Returns `(byte → class, class count, representative byte per class)`.
pub(crate) fn byte_classes(states: &[crate::nfa::State]) -> (Vec<u16>, usize, Vec<u8>) {
    // Signature of a byte: the set of transition-classes containing it.
    let all_classes: Vec<&ClassSet> = states
        .iter()
        .flat_map(|s| s.on_byte.iter().map(|(c, _)| c))
        .collect();
    let mut sig_ids: HashMap<Vec<bool>, u16> = HashMap::new();
    let mut class_of = vec![0u16; 256];
    let mut reps: Vec<u8> = Vec::new();
    for b in 0u16..256 {
        let byte = b as u8;
        let sig: Vec<bool> = all_classes.iter().map(|c| c.contains(byte)).collect();
        let next_id = sig_ids.len() as u16;
        let id = *sig_ids.entry(sig).or_insert_with(|| {
            reps.push(byte);
            next_id
        });
        class_of[b as usize] = id;
    }
    let n = sig_ids.len();
    (class_of, n, reps)
}

/// Union of two sorted, deduped index lists.
pub(crate) fn merge_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn dfa(pattern: &str) -> ScanDfa {
        let parsed = parse(pattern).unwrap();
        let nfa = Nfa::from_ast(&parsed.ast);
        ScanDfa::build(&nfa, parsed.anchored_start, parsed.anchored_end).unwrap()
    }

    #[test]
    fn counts_disjoint_occurrences() {
        let d = dfa("ab");
        assert_eq!(d.count_matches(b"ab ab ab"), 3);
        assert_eq!(d.count_matches(b"xxab"), 1);
        assert_eq!(d.count_matches(b"a b"), 0);
        assert_eq!(d.count_matches(b""), 0);
    }

    #[test]
    fn non_overlapping_counting() {
        let d = dfa("aa");
        // "aaaa" = two non-overlapping "aa".
        assert_eq!(d.count_matches(b"aaaa"), 2);
        assert_eq!(d.count_matches(b"aaa"), 1);
    }

    #[test]
    fn shortest_match_semantics() {
        let d = dfa("a+b?");
        // Shortest match "a" fires at the first 'a'.
        assert_eq!(d.count_matches(b"aaa"), 3);
    }

    #[test]
    fn anchored_start() {
        let d = dfa("^hdr");
        assert_eq!(d.count_matches(b"hdr rest"), 1);
        assert_eq!(d.count_matches(b"xx hdr"), 0);
    }

    #[test]
    fn anchored_end() {
        let d = dfa("tail$");
        assert_eq!(d.count_matches(b"xx tail"), 1);
        assert_eq!(d.count_matches(b"tail xx"), 0);
        assert_eq!(d.count_matches(b"tail"), 1);
    }

    #[test]
    fn fully_anchored() {
        let d = dfa("^only$");
        assert_eq!(d.count_matches(b"only"), 1);
        assert_eq!(d.count_matches(b"only!"), 0);
        assert_eq!(d.count_matches(b"!only"), 0);
    }

    #[test]
    fn alternation_counting() {
        let d = dfa("cat|dog");
        assert_eq!(d.count_matches(b"cat dog cat"), 3);
    }

    #[test]
    fn classes_and_repeats() {
        let d = dfa(r"[0-9]{3}-[0-9]{4}");
        assert_eq!(d.count_matches(b"call 555-1234 or 867-5309"), 2);
        assert_eq!(d.count_matches(b"55-1234"), 0);
    }

    #[test]
    fn is_match_early_exit() {
        let d = dfa("needle");
        assert!(d.is_match(b"hay needle hay"));
        assert!(!d.is_match(b"hay hay"));
    }

    #[test]
    fn dot_any_byte() {
        let d = dfa("a.c");
        assert_eq!(d.count_matches(b"a\x00c abc a-c"), 3);
    }

    #[test]
    fn byte_class_compression_small() {
        let d = dfa("abc");
        // 'a', 'b', 'c', everything-else = 4 classes.
        assert_eq!(d.class_count(), 4);
    }

    #[test]
    fn overlapping_alternatives_count_once_per_end() {
        let d = dfa("ab|b");
        // "ab": 'b' completes both alternatives at the same position -> 1.
        assert_eq!(d.count_matches(b"ab"), 1);
    }
}
