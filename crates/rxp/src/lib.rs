//! # yala-rxp — a from-scratch regex engine standing in for the BlueField-2
//! RXP regex accelerator
//!
//! The paper's regex-based NFs (FlowMonitor, NIDS, PacketFilter,
//! IPComp Gateway) submit packet payloads to the on-NIC RXP accelerator,
//! which scans them against a compiled L7-filter ruleset and reports
//! matches. The *number of matches per payload byte* (MTBR,
//! match-to-byte ratio) is the traffic attribute driving accelerator
//! service time (paper §4.1.1 / Eq. 4).
//!
//! This crate reproduces that code path in software:
//!
//! * [`parse`](parser::parse) — a regex parser supporting literals, `.`,
//!   character classes, escapes, alternation, grouping, `* + ?` and bounded
//!   `{n,m}` repetition, leading `^` / trailing `$` anchors, and a global
//!   `(?i)` case-insensitivity flag (the subset L7-filter patterns use).
//! * [`nfa`] — Thompson construction, plus the rule-tagged
//!   [`MergedNfa`](nfa::MergedNfa) union feeding multi-pattern fusion.
//! * [`dfa`] — subset construction over byte classes into a *scanning DFA*
//!   that counts non-overlapping, leftmost-shortest matches in a single
//!   O(len) pass — the same streaming behaviour as a hardware scan engine.
//! * [`fused`] — the fused multi-pattern DFA: the whole ruleset compiled
//!   into one automaton (as real RXP hardware does), emitting per-rule
//!   match counts in a single pass, with transparent per-rule fallback
//!   under the state budget.
//! * [`Regex`] — the compiled form; [`Ruleset`] — a multi-pattern set with
//!   per-rule match counting and an L7-filter-style default set.
//!
//! # Example
//!
//! ```
//! use yala_rxp::Regex;
//! let re = Regex::compile(r"GET /[a-z]+ HTTP/1\.[01]").unwrap();
//! let payload = b"GET /index HTTP/1.1 ... GET /img HTTP/1.0";
//! assert_eq!(re.count_matches(payload), 2);
//! ```

pub mod classes;
pub mod dfa;
pub mod fused;
pub mod nfa;
pub mod parser;
pub mod regex;
pub mod ruleset;

pub use crate::regex::{CompileRegexError, Regex};
pub use classes::ClassSet;
pub use fused::{FusedDfa, FusedScanner};
pub use ruleset::{l7_default_ruleset, Rule, Ruleset, ScanReport};
