//! Fused multi-pattern scanning: one subset-constructed product DFA over
//! the union of all rule NFAs, emitting *per-rule* match counts in a
//! single O(len) pass.
//!
//! Real RXP hardware compiles the whole ruleset into one automaton; the
//! per-rule [`ScanDfa`](crate::dfa::ScanDfa) path re-scans every payload
//! once per rule. This module restores the hardware shape: the merged NFA
//! keeps rule-tagged accept states, the fused DFA's transitions carry a
//! bitmask of rules that complete on that byte, and each completing rule's
//! NFA states are reset exactly as its standalone machine would reset —
//! so per-rule leftmost-shortest, non-overlapping counting is preserved
//! byte-for-byte (the parity suite asserts this against the per-rule
//! oracle).
//!
//! Per-rule semantics inside the product automaton:
//!
//! * **Unanchored** — the rule's start closure is re-injected after every
//!   byte; when its accept state appears in the stepped subset, the rule's
//!   counter bumps and its non-start states are stripped before the subset
//!   is interned (mirroring the standalone machine's reset-to-start).
//! * **`^…`** — never re-injected; on a match *all* its states are
//!   stripped (a start-anchored scan stops after its single match).
//! * **`…$` / `^…$`** — never counted mid-stream; a per-state EOF mask
//!   records which end-anchored rules accept if the payload ends there.
//!
//! The state budget is [`MAX_DFA_STATES`]; a [`FusedScanner`] groups rules
//! into fused automata of at most [`MAX_FUSED_GROUP`] rules and falls back
//! to per-rule scanning for any rule whose fusion would blow the budget,
//! so [`Ruleset::scan`](crate::Ruleset::scan) behaves identically whatever
//! strategy was chosen.

use crate::dfa::{byte_classes, DfaTooComplexError, StampSet, MAX_DFA_STATES};
use crate::nfa::{MergedNfa, Nfa};
use std::collections::HashMap;

/// Maximum rules fused into one automaton: the per-transition match mask
/// packs into the low half of a `u64` table entry alongside the target.
pub const MAX_FUSED_GROUP: usize = 32;

/// Hard ceiling on any caller-supplied fused state budget: premultiplied
/// targets (`state_id * n_classes`, `n_classes ≤ 257`) must fit the high
/// 32 bits of a packed table entry. `(1 << 22) * 257 < u32::MAX` with
/// room to spare.
pub const MAX_FUSED_BUDGET: usize = 1 << 22;

/// A fused scanning DFA over up to [`MAX_FUSED_GROUP`] rules.
///
/// The transition table packs, per `(state, byte-class)` entry, the
/// *premultiplied* target state id (high 32 bits) and the bitmask of rules
/// whose match completes on that transition (low 32 bits) — one load per
/// payload byte.
#[derive(Debug, Clone)]
pub struct FusedDfa {
    /// Byte → equivalence-class index over the merged alphabet.
    class_of: Vec<u16>,
    n_classes: usize,
    /// `table[state_id * n_classes + class]` = `target_premultiplied << 32
    /// | match_mask`. Targets are premultiplied by `n_classes` so the scan
    /// loop is a single add + load per byte.
    table: Vec<u64>,
    /// Premultiplied start state id.
    start: u32,
    /// Per-state (unscaled id) bitmask of end-anchored rules accepting at
    /// end-of-payload.
    eof_mask: Vec<u32>,
    /// Bit index → rule index in the owning ruleset.
    rule_ids: Vec<u16>,
}

impl FusedDfa {
    /// Runs subset construction over the merged NFA.
    ///
    /// `rule_ids[i]` is the ruleset index reported for merged rule `i`.
    /// The caller's `budget` is honoured as given (so tuning above
    /// [`MAX_DFA_STATES`] works), up to the packing-imposed
    /// [`MAX_FUSED_BUDGET`] ceiling.
    ///
    /// # Errors
    ///
    /// Returns [`DfaTooComplexError`] if more than `budget` product states
    /// materialise.
    ///
    /// # Panics
    ///
    /// Panics if the group exceeds [`MAX_FUSED_GROUP`] rules or `rule_ids`
    /// is mis-sized (internal callers never do).
    pub fn build(
        merged: &MergedNfa,
        rule_ids: &[u16],
        budget: usize,
    ) -> Result<Self, DfaTooComplexError> {
        assert!(merged.rules.len() <= MAX_FUSED_GROUP, "group too large");
        assert_eq!(merged.rules.len(), rule_ids.len(), "mis-sized rule ids");
        let budget = budget.min(MAX_FUSED_BUDGET);
        let (class_of, n_classes, class_reps) = byte_classes(&merged.states);

        let mut subset_ids: HashMap<Vec<usize>, u32> = HashMap::new();
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        let mut targets: Vec<u32> = Vec::new();
        let mut masks: Vec<u32> = Vec::new();
        let mut eof_mask: Vec<u32> = Vec::new();
        let mut worklist: Vec<u32> = Vec::new();

        let eof_bits = |subset: &[usize]| -> u32 {
            let mut m = 0u32;
            for (i, r) in merged.rules.iter().enumerate() {
                if r.anchored_end && subset.binary_search(&r.accept).is_ok() {
                    m |= 1 << i;
                }
            }
            m
        };

        let intern = |subset: Vec<usize>,
                      subsets: &mut Vec<Vec<usize>>,
                      targets: &mut Vec<u32>,
                      masks: &mut Vec<u32>,
                      eof_mask: &mut Vec<u32>,
                      worklist: &mut Vec<u32>,
                      subset_ids: &mut HashMap<Vec<usize>, u32>|
         -> Result<u32, DfaTooComplexError> {
            if let Some(&id) = subset_ids.get(&subset) {
                return Ok(id);
            }
            if subsets.len() >= budget {
                return Err(DfaTooComplexError);
            }
            let id = subsets.len() as u32;
            subset_ids.insert(subset.clone(), id);
            eof_mask.push(eof_bits(&subset));
            subsets.push(subset);
            targets.extend(std::iter::repeat_n(0, n_classes));
            masks.extend(std::iter::repeat_n(0, n_classes));
            worklist.push(id);
            Ok(id)
        };

        let start = intern(
            merged.init.clone(),
            &mut subsets,
            &mut targets,
            &mut masks,
            &mut eof_mask,
            &mut worklist,
            &mut subset_ids,
        )?;

        let mut seen = StampSet::new(merged.len());
        let mut stack: Vec<usize> = Vec::new();
        let mut out: Vec<usize> = Vec::new();
        while let Some(id) = worklist.pop() {
            let subset = subsets[id as usize].clone();
            for class in 0..n_classes {
                let rep = class_reps[class];
                // Byte step + epsilon closure (stamp-deduped DFS).
                seen.begin();
                stack.clear();
                out.clear();
                for &s in &subset {
                    for (cls, t) in &merged.states[s].on_byte {
                        if cls.contains(rep) && seen.insert(*t) {
                            stack.push(*t);
                        }
                    }
                }
                while let Some(s) = stack.pop() {
                    out.push(s);
                    for &t in &merged.states[s].eps {
                        if seen.insert(t) {
                            stack.push(t);
                        }
                    }
                }
                // Which rules complete on this byte? (Accept reachability is
                // decided before re-injection; start closures cannot contain
                // accepts because empty-matching patterns are rejected.)
                let mut match_mask = 0u32;
                for (i, r) in merged.rules.iter().enumerate() {
                    if !r.anchored_end && seen.contains(r.accept) {
                        match_mask |= 1 << i;
                    }
                }
                // Re-inject unanchored rules' start closures so their next
                // match may begin at the following byte.
                for &s in &merged.reinject {
                    if seen.insert(s) {
                        out.push(s);
                    }
                }
                // Per-rule reset, mirroring the standalone machines: a
                // matched unanchored rule keeps only its start closure; a
                // matched start-anchored rule is done and loses every state.
                if match_mask != 0 {
                    out.retain(|&s| {
                        let r = merged.rule_of[s] as usize;
                        if match_mask & (1 << r) == 0 {
                            return true;
                        }
                        !merged.rules[r].anchored_start && merged.in_start_closure[s]
                    });
                }
                out.sort_unstable();
                let target = intern(
                    out.clone(),
                    &mut subsets,
                    &mut targets,
                    &mut masks,
                    &mut eof_mask,
                    &mut worklist,
                    &mut subset_ids,
                )?;
                targets[id as usize * n_classes + class] = target;
                masks[id as usize * n_classes + class] = match_mask;
            }
        }

        // Pack premultiplied targets + match masks into one u64 per entry.
        let nc = n_classes as u64;
        let table: Vec<u64> = targets
            .iter()
            .zip(&masks)
            .map(|(&t, &m)| ((t as u64 * nc) << 32) | m as u64)
            .collect();
        Ok(Self {
            class_of,
            n_classes,
            table,
            start: start * n_classes as u32,
            eof_mask,
            rule_ids: rule_ids.to_vec(),
        })
    }

    /// Scans `payload` once, accumulating match counts into `per_rule`
    /// (indexed by ruleset rule id; entries for other groups untouched).
    pub fn scan_into(&self, payload: &[u8], per_rule: &mut [usize]) {
        let mut cur = self.start as usize;
        for &b in payload {
            let e = self.table[cur + self.class_of[b as usize] as usize];
            cur = (e >> 32) as usize;
            let mut m = e as u32;
            while m != 0 {
                per_rule[self.rule_ids[m.trailing_zeros() as usize] as usize] += 1;
                m &= m - 1;
            }
        }
        let mut m = self.eof_mask[cur / self.n_classes];
        while m != 0 {
            per_rule[self.rule_ids[m.trailing_zeros() as usize] as usize] += 1;
            m &= m - 1;
        }
    }

    /// Number of materialised product states.
    pub fn state_count(&self) -> usize {
        self.eof_mask.len()
    }

    /// Number of byte equivalence classes over the merged alphabet.
    pub fn class_count(&self) -> usize {
        self.n_classes
    }

    /// Number of rules fused into this automaton.
    pub fn rule_count(&self) -> usize {
        self.rule_ids.len()
    }
}

/// One rule's compiled NFA + anchors, input to [`FusedScanner::build`].
#[derive(Debug, Clone)]
pub struct RuleNfa {
    /// Thompson NFA of the rule body.
    pub nfa: Nfa,
    /// Rule pattern began with `^`.
    pub anchored_start: bool,
    /// Rule pattern ended with `$`.
    pub anchored_end: bool,
}

/// The fused scanning strategy for a whole ruleset: fused groups plus a
/// per-rule fallback list for rules whose fusion would blow the budget.
#[derive(Debug, Clone, Default)]
pub struct FusedScanner {
    groups: Vec<FusedDfa>,
    /// Ruleset indices scanned with their standalone per-rule DFAs.
    fallback: Vec<u16>,
}

impl FusedScanner {
    /// Builds the scanner with the default [`MAX_DFA_STATES`] budget.
    pub fn build(rules: &[RuleNfa]) -> Self {
        Self::build_with_budget(rules, MAX_DFA_STATES)
    }

    /// Builds the scanner with an explicit per-automaton state `budget`
    /// (exposed for tests and tuning, honoured up to [`MAX_FUSED_BUDGET`];
    /// rules that cannot fuse within it are transparently moved to the
    /// per-rule fallback list).
    ///
    /// Never fails: in the worst case every rule falls back.
    ///
    /// Compile cost: a chunk that fuses cleanly costs one subset
    /// construction. A chunk that trips the budget pays the greedy repair
    /// — one rebuild per re-added rule, so up to [`MAX_FUSED_GROUP`]
    /// constructions, the later ones near budget size. That is accepted
    /// here because compilation happens once per ruleset (the default set
    /// is additionally cached process-wide) and never on a scan path.
    pub fn build_with_budget(rules: &[RuleNfa], budget: usize) -> Self {
        // Rule ids are u16 throughout the scanner; a larger ruleset would
        // silently wrap `0..rules.len() as u16` below and never scan the
        // truncated rules.
        assert!(
            rules.len() <= u16::MAX as usize,
            "ruleset too large: {} rules exceeds the {} supported per scanner",
            rules.len(),
            u16::MAX
        );
        let mut groups = Vec::new();
        let mut fallback: Vec<u16> = Vec::new();
        let try_group = |ids: &[u16]| -> Result<FusedDfa, DfaTooComplexError> {
            let parts: Vec<(&Nfa, bool, bool)> = ids
                .iter()
                .map(|&i| {
                    let r = &rules[i as usize];
                    (&r.nfa, r.anchored_start, r.anchored_end)
                })
                .collect();
            FusedDfa::build(&MergedNfa::merge(&parts), ids, budget)
        };
        for chunk in (0..rules.len() as u16)
            .collect::<Vec<u16>>()
            .chunks(MAX_FUSED_GROUP)
        {
            match try_group(chunk) {
                Ok(dfa) => groups.push(dfa),
                Err(_) => {
                    // Greedy repair: re-add rules one at a time; any rule
                    // whose addition blows the budget scans per-rule.
                    let mut accepted: Vec<u16> = Vec::new();
                    let mut built: Option<FusedDfa> = None;
                    for &id in chunk {
                        accepted.push(id);
                        match try_group(&accepted) {
                            Ok(dfa) => built = Some(dfa),
                            Err(_) => {
                                accepted.pop();
                                fallback.push(id);
                            }
                        }
                    }
                    if let Some(dfa) = built {
                        groups.push(dfa);
                    }
                }
            }
        }
        Self { groups, fallback }
    }

    /// The fused automata.
    pub fn groups(&self) -> &[FusedDfa] {
        &self.groups
    }

    /// Ruleset indices that scan with their standalone per-rule DFAs.
    pub fn fallback_rules(&self) -> &[u16] {
        &self.fallback
    }

    /// Number of rules covered by fused automata.
    pub fn fused_rule_count(&self) -> usize {
        self.groups.iter().map(FusedDfa::rule_count).sum()
    }

    /// Total product states across fused groups.
    pub fn state_count(&self) -> usize {
        self.groups.iter().map(FusedDfa::state_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn rule_nfa(pattern: &str) -> RuleNfa {
        let parsed = parse(pattern).unwrap();
        RuleNfa {
            nfa: Nfa::from_ast(&parsed.ast),
            anchored_start: parsed.anchored_start,
            anchored_end: parsed.anchored_end,
        }
    }

    fn scan(scanner: &FusedScanner, payload: &[u8], n_rules: usize) -> Vec<usize> {
        let mut per_rule = vec![0usize; n_rules];
        for g in scanner.groups() {
            g.scan_into(payload, &mut per_rule);
        }
        per_rule
    }

    #[test]
    fn two_rules_one_pass() {
        let rules = [rule_nfa("cat"), rule_nfa("dog")];
        let s = FusedScanner::build(&rules);
        assert_eq!(s.fused_rule_count(), 2);
        assert!(s.fallback_rules().is_empty());
        assert_eq!(scan(&s, b"cat dog cat", 2), vec![2, 1]);
    }

    #[test]
    fn overlapping_rules_count_independently() {
        // "ab" completes both rules at the same byte; each counts its own.
        let rules = [rule_nfa("ab"), rule_nfa("b")];
        let s = FusedScanner::build(&rules);
        assert_eq!(scan(&s, b"ab", 2), vec![1, 1]);
        // After rule-1 matches on the leading 'b', its reset must not
        // disturb rule-0's in-flight partial.
        assert_eq!(scan(&s, b"bab", 2), vec![1, 2]);
    }

    #[test]
    fn non_overlapping_reset_is_per_rule() {
        let rules = [rule_nfa("aa"), rule_nfa("aaa")];
        let s = FusedScanner::build(&rules);
        // Rule "aa" resets after each match (positions 2, 4); rule "aaa"
        // independently counts its own non-overlapping matches.
        assert_eq!(scan(&s, b"aaaa", 2), vec![2, 1]);
        assert_eq!(scan(&s, b"aaaaaa", 2), vec![3, 2]);
    }

    #[test]
    fn anchors_all_flavours() {
        let rules = [
            rule_nfa("^hdr"),
            rule_nfa("tail$"),
            rule_nfa("^only$"),
            rule_nfa("mid"),
        ];
        let s = FusedScanner::build(&rules);
        assert_eq!(scan(&s, b"hdr mid tail", 4), vec![1, 1, 0, 1]);
        assert_eq!(scan(&s, b"x hdr tail x", 4), vec![0, 0, 0, 0]);
        assert_eq!(scan(&s, b"only", 4), vec![0, 0, 1, 0]);
        assert_eq!(scan(&s, b"", 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn all_start_anchored_rules_can_die() {
        let rules = [rule_nfa("^aa"), rule_nfa("^bb")];
        let s = FusedScanner::build(&rules);
        assert_eq!(scan(&s, b"zz aa bb", 2), vec![0, 0]);
        assert_eq!(scan(&s, b"aa bb aa", 2), vec![1, 0]);
    }

    #[test]
    fn tiny_budget_falls_back() {
        let rules = [rule_nfa("cat"), rule_nfa("dog")];
        let s = FusedScanner::build_with_budget(&rules, 1);
        assert_eq!(s.fused_rule_count(), 0);
        assert_eq!(s.fallback_rules(), &[0, 1]);
    }

    #[test]
    fn partial_budget_keeps_what_fits() {
        let rules = [rule_nfa("ab"), rule_nfa("[0-9]{2,8}[a-z]{2,8}q")];
        let full = FusedScanner::build(&rules);
        let budget = full.groups()[0].state_count();
        // A budget big enough for the small rule alone but not both.
        let s = FusedScanner::build_with_budget(&rules, budget.saturating_sub(2).max(5));
        assert!(s.fused_rule_count() < 2, "expected a fallback split");
        assert_eq!(
            s.fused_rule_count() + s.fallback_rules().len(),
            2,
            "every rule must be covered by exactly one strategy"
        );
    }
}
