//! The public compiled-regex type tying parser → NFA → scanning DFA.

use crate::dfa::{DfaTooComplexError, ScanDfa};
use crate::nfa::Nfa;
use crate::parser::{parse, ParseRegexError};

/// A compiled regular expression specialised for streaming match counting
/// over packet payloads.
///
/// # Example
///
/// ```
/// use yala_rxp::Regex;
/// let re = Regex::compile(r"(?i)ssh-[12]\.[0-9]").unwrap();
/// assert_eq!(re.count_matches(b"SSH-2.0-OpenSSH banner ssh-1.5"), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    dfa: ScanDfa,
}

/// Error produced by [`Regex::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileRegexError {
    /// The pattern is syntactically invalid.
    Parse(ParseRegexError),
    /// The pattern matches the empty string, which a streaming counter
    /// cannot enumerate (it would match at every offset).
    MatchesEmpty,
    /// Subset construction exceeded the state budget.
    TooComplex(DfaTooComplexError),
}

impl std::fmt::Display for CompileRegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "{e}"),
            Self::MatchesEmpty => write!(f, "pattern matches the empty string"),
            Self::TooComplex(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileRegexError {}

impl From<ParseRegexError> for CompileRegexError {
    fn from(e: ParseRegexError) -> Self {
        Self::Parse(e)
    }
}

impl From<DfaTooComplexError> for CompileRegexError {
    fn from(e: DfaTooComplexError) -> Self {
        Self::TooComplex(e)
    }
}

/// A compiled rule plus the intermediate artefacts the fused multi-pattern
/// builder needs: the Thompson NFA and the anchor flags. Produced by
/// [`compile_parts`] so [`Ruleset`](crate::Ruleset) parses each pattern
/// exactly once for both its per-rule DFA and the fused automaton.
#[derive(Debug, Clone)]
pub(crate) struct CompiledParts {
    pub regex: Regex,
    pub nfa: Nfa,
    pub anchored_start: bool,
    pub anchored_end: bool,
}

/// Compiles `pattern`, returning the [`Regex`] together with its NFA and
/// anchors (see [`CompiledParts`]).
pub(crate) fn compile_parts(pattern: &str) -> Result<CompiledParts, CompileRegexError> {
    let parsed = parse(pattern)?;
    let nfa = Nfa::from_ast(&parsed.ast);
    if nfa.matches_empty() {
        return Err(CompileRegexError::MatchesEmpty);
    }
    let dfa = ScanDfa::build(&nfa, parsed.anchored_start, parsed.anchored_end)?;
    Ok(CompiledParts {
        regex: Regex {
            pattern: pattern.to_string(),
            dfa,
        },
        nfa,
        anchored_start: parsed.anchored_start,
        anchored_end: parsed.anchored_end,
    })
}

impl Regex {
    /// Compiles `pattern` into a scanning DFA.
    ///
    /// # Errors
    ///
    /// Returns [`CompileRegexError`] if the pattern is malformed, matches
    /// the empty string, or expands past the DFA state budget.
    pub fn compile(pattern: &str) -> Result<Self, CompileRegexError> {
        Ok(compile_parts(pattern)?.regex)
    }

    /// Counts non-overlapping, leftmost-shortest matches in `haystack`.
    pub fn count_matches(&self, haystack: &[u8]) -> usize {
        self.dfa.count_matches(haystack)
    }

    /// Whether `haystack` contains at least one match.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        self.dfa.is_match(haystack)
    }

    /// The original pattern string.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of DFA states — a proxy for how much accelerator memory the
    /// compiled rule would occupy.
    pub fn state_count(&self) -> usize {
        self.dfa.state_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_and_count() {
        let re = Regex::compile("abc+").unwrap();
        assert_eq!(re.count_matches(b"abc abcc ab"), 2);
        assert_eq!(re.pattern(), "abc+");
    }

    #[test]
    fn empty_matching_rejected() {
        assert!(matches!(
            Regex::compile("a*"),
            Err(CompileRegexError::MatchesEmpty)
        ));
        assert!(matches!(
            Regex::compile("x|"),
            Err(CompileRegexError::MatchesEmpty)
        ));
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(matches!(
            Regex::compile("(ab"),
            Err(CompileRegexError::Parse(_))
        ));
    }

    #[test]
    fn case_insensitive_flag() {
        let re = Regex::compile("(?i)http").unwrap();
        assert!(re.is_match(b"HTTP/1.1"));
        assert!(re.is_match(b"http/1.1"));
        assert!(re.is_match(b"HtTp/1.1"));
    }
}
