//! Recursive-descent regex parser producing an [`Ast`].
//!
//! Grammar (classic three-level precedence):
//!
//! ```text
//! alternation := concat ('|' concat)*
//! concat      := repeat*
//! repeat      := atom ('*' | '+' | '?' | '{n}' | '{n,}' | '{n,m}')?
//! atom        := literal | '.' | class | '(' alternation ')' | escape
//! ```
//!
//! Supported syntax mirrors what the L7-filter patterns shipped with the
//! paper's artifact rely on. `^` is honoured as a leading anchor and `$` as
//! a trailing anchor; a `(?i)` prefix sets global case-insensitivity.

use crate::classes::{predefined, ClassSet};

/// Maximum total expansion of bounded repetitions (`{n,m}`), to bound
/// compile cost.
const MAX_REPEAT: u32 = 256;

/// Abstract syntax tree of a parsed regex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// Matches one byte from the class.
    Class(ClassSet),
    /// Matches each node in sequence.
    Concat(Vec<Ast>),
    /// Matches any one alternative.
    Alt(Vec<Ast>),
    /// Matches `node` between `min` and `max` times (`None` = unbounded).
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
    },
}

/// A parsed pattern: the AST plus anchor/case flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// Body of the pattern.
    pub ast: Ast,
    /// Pattern began with `^`.
    pub anchored_start: bool,
    /// Pattern ended with `$`.
    pub anchored_end: bool,
    /// Pattern began with `(?i)`.
    pub case_insensitive: bool,
}

/// Error produced by [`parse`] for malformed patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegexError {
    /// Byte offset in the pattern where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseRegexError {}

/// Parses `pattern` into a [`Parsed`] AST.
///
/// # Errors
///
/// Returns [`ParseRegexError`] on malformed syntax, out-of-range repetition
/// bounds, or unsupported constructs (backreferences, lookaround).
pub fn parse(pattern: &str) -> Result<Parsed, ParseRegexError> {
    let bytes = pattern.as_bytes();
    let mut pos = 0usize;
    let case_insensitive = bytes.starts_with(b"(?i)");
    if case_insensitive {
        pos = 4;
    }
    let anchored_start = bytes.get(pos) == Some(&b'^');
    if anchored_start {
        pos += 1;
    }
    let mut end = bytes.len();
    // `$` is a trailing anchor only if not escaped.
    let anchored_end = end > pos && bytes[end - 1] == b'$' && !is_escaped(bytes, end - 1);
    if anchored_end {
        end -= 1;
    }
    let mut p = Parser {
        bytes: &bytes[..end],
        pos,
        case_insensitive,
    };
    let ast = p.alternation()?;
    if p.pos != p.bytes.len() {
        return Err(p.err("unexpected trailing characters (unbalanced ')'?)"));
    }
    Ok(Parsed {
        ast,
        anchored_start,
        anchored_end,
        case_insensitive,
    })
}

fn is_escaped(bytes: &[u8], idx: usize) -> bool {
    let mut backslashes = 0;
    let mut i = idx;
    while i > 0 && bytes[i - 1] == b'\\' {
        backslashes += 1;
        i -= 1;
    }
    backslashes % 2 == 1
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    case_insensitive: bool,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseRegexError {
        ParseRegexError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn alternation(&mut self) -> Result<Ast, ParseRegexError> {
        let mut alts = vec![self.concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            alts.push(self.concat()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().expect("nonempty")
        } else {
            Ast::Alt(alts)
        })
    }

    fn concat(&mut self) -> Result<Ast, ParseRegexError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("nonempty"),
            _ => Ast::Concat(items),
        })
    }

    fn repeat(&mut self) -> Result<Ast, ParseRegexError> {
        let atom = self.atom()?;
        let Some(b) = self.peek() else {
            return Ok(atom);
        };
        let (min, max) = match b {
            b'*' => {
                self.bump();
                (0, None)
            }
            b'+' => {
                self.bump();
                (1, None)
            }
            b'?' => {
                self.bump();
                (0, Some(1))
            }
            b'{' => {
                let save = self.pos;
                match self.brace_bounds() {
                    Some(bounds) => bounds,
                    None => {
                        // Not a valid bound spec: treat '{' literally.
                        self.pos = save;
                        return Ok(atom);
                    }
                }
            }
            _ => return Ok(atom),
        };
        if let Some(max) = max {
            if max < min {
                return Err(self.err("repetition max below min"));
            }
            if max > MAX_REPEAT {
                return Err(self.err("repetition bound too large"));
            }
        } else if min > MAX_REPEAT {
            return Err(self.err("repetition bound too large"));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    /// Parses `{n}`, `{n,}` or `{n,m}` after the opening brace. Returns
    /// `None` (without consuming definitively) if the contents do not form a
    /// valid bound.
    fn brace_bounds(&mut self) -> Option<(u32, Option<u32>)> {
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.bump();
        let n = self.number()?;
        match self.peek() {
            Some(b'}') => {
                self.bump();
                Some((n, Some(n)))
            }
            Some(b',') => {
                self.bump();
                if self.peek() == Some(b'}') {
                    self.bump();
                    Some((n, None))
                } else {
                    let m = self.number()?;
                    if self.peek() == Some(b'}') {
                        self.bump();
                        Some((n, Some(m)))
                    } else {
                        None
                    }
                }
            }
            _ => None,
        }
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn atom(&mut self) -> Result<Ast, ParseRegexError> {
        let Some(b) = self.peek() else {
            return Err(self.err("expected atom"));
        };
        match b {
            b'(' => {
                self.bump();
                // Non-capturing group marker is accepted and ignored.
                if self.bytes[self.pos..].starts_with(b"?:") {
                    self.pos += 2;
                } else if self.peek() == Some(b'?') {
                    return Err(self.err("unsupported group extension (lookaround?)"));
                }
                let inner = self.alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("unbalanced '('"));
                }
                Ok(inner)
            }
            b'[' => self.class(),
            b'.' => {
                self.bump();
                Ok(Ast::Class(ClassSet::any()))
            }
            b'\\' => {
                self.bump();
                let cls = self.escape()?;
                Ok(Ast::Class(self.fold(cls)))
            }
            b'*' | b'+' | b'?' => Err(self.err("quantifier with nothing to repeat")),
            b')' => Err(self.err("unbalanced ')'")),
            _ => {
                self.bump();
                Ok(Ast::Class(self.fold(ClassSet::single(b))))
            }
        }
    }

    fn fold(&self, cls: ClassSet) -> ClassSet {
        if self.case_insensitive {
            cls.case_fold()
        } else {
            cls
        }
    }

    fn escape(&mut self) -> Result<ClassSet, ParseRegexError> {
        let Some(b) = self.bump() else {
            return Err(self.err("dangling backslash"));
        };
        if let Some(cls) = predefined(b) {
            return Ok(cls);
        }
        Ok(match b {
            b'n' => ClassSet::single(b'\n'),
            b'r' => ClassSet::single(b'\r'),
            b't' => ClassSet::single(b'\t'),
            b'0' => ClassSet::single(0),
            b'x' => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                ClassSet::single(hi * 16 + lo)
            }
            // Any other escaped byte is itself (covers \. \\ \[ \$ etc.).
            other => ClassSet::single(other),
        })
    }

    fn hex_digit(&mut self) -> Result<u8, ParseRegexError> {
        let Some(b) = self.bump() else {
            return Err(self.err("truncated \\x escape"));
        };
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(self.err("invalid hex digit in \\x escape")),
        }
    }

    fn class(&mut self) -> Result<Ast, ParseRegexError> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.bump();
        let negated = self.peek() == Some(b'^');
        if negated {
            self.bump();
        }
        let mut set = ClassSet::empty();
        let mut first = true;
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated class"));
            };
            if b == b']' && !first {
                self.bump();
                break;
            }
            first = false;
            let lo = match b {
                b'\\' => {
                    self.bump();
                    let esc = self.escape()?;
                    if esc.len() != 1 {
                        // Predefined class inside []: union it in; no ranges.
                        set = set.union(&esc);
                        continue;
                    }
                    esc.first_byte().expect("single-byte escape")
                }
                _ => {
                    self.bump();
                    b
                }
            };
            // Range?
            if self.peek() == Some(b'-')
                && self.bytes.get(self.pos + 1).is_some_and(|&nb| nb != b']')
            {
                self.bump(); // '-'
                let hi_b = self.bump().expect("checked above");
                let hi = if hi_b == b'\\' {
                    let esc = self.escape()?;
                    if esc.len() != 1 {
                        return Err(self.err("class range with multi-byte escape"));
                    }
                    esc.first_byte().expect("single-byte escape")
                } else {
                    hi_b
                };
                if hi < lo {
                    return Err(self.err("inverted class range"));
                }
                set = set.union(&ClassSet::range(lo, hi));
            } else {
                set.insert(lo);
            }
        }
        let set = if negated { set.negate() } else { set };
        Ok(Ast::Class(self.fold(set)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Parsed {
        parse(s).unwrap_or_else(|e| panic!("parse {s:?}: {e}"))
    }

    #[test]
    fn literal_concat() {
        let parsed = p("abc");
        match parsed.ast {
            Ast::Concat(items) => assert_eq!(items.len(), 3),
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn alternation_and_grouping() {
        let parsed = p("ab|cd|(ef)");
        match parsed.ast {
            Ast::Alt(alts) => assert_eq!(alts.len(), 3),
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn quantifiers() {
        assert!(matches!(
            p("a*").ast,
            Ast::Repeat {
                min: 0,
                max: None,
                ..
            }
        ));
        assert!(matches!(
            p("a+").ast,
            Ast::Repeat {
                min: 1,
                max: None,
                ..
            }
        ));
        assert!(matches!(
            p("a?").ast,
            Ast::Repeat {
                min: 0,
                max: Some(1),
                ..
            }
        ));
        assert!(matches!(
            p("a{3}").ast,
            Ast::Repeat {
                min: 3,
                max: Some(3),
                ..
            }
        ));
        assert!(matches!(
            p("a{2,}").ast,
            Ast::Repeat {
                min: 2,
                max: None,
                ..
            }
        ));
        assert!(matches!(
            p("a{2,5}").ast,
            Ast::Repeat {
                min: 2,
                max: Some(5),
                ..
            }
        ));
    }

    #[test]
    fn literal_brace_without_bounds() {
        // "{x}" is not a valid bound; brace is literal.
        let parsed = p("a{x}");
        assert!(matches!(parsed.ast, Ast::Concat(_)));
    }

    #[test]
    fn anchors_detected() {
        let parsed = p("^http$");
        assert!(parsed.anchored_start);
        assert!(parsed.anchored_end);
        let parsed = p(r"cost\$");
        assert!(!parsed.anchored_end);
    }

    #[test]
    fn case_flag() {
        let parsed = p("(?i)ssh");
        assert!(parsed.case_insensitive);
        // First atom's class should include both cases.
        match parsed.ast {
            Ast::Concat(items) => match &items[0] {
                Ast::Class(c) => {
                    assert!(c.contains(b's') && c.contains(b'S'));
                }
                other => panic!("unexpected ast {other:?}"),
            },
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn classes_with_ranges_and_negation() {
        match p("[a-f0-9]").ast {
            Ast::Class(c) => {
                assert!(c.contains(b'c') && c.contains(b'7'));
                assert!(!c.contains(b'g'));
            }
            other => panic!("unexpected ast {other:?}"),
        }
        match p("[^a]").ast {
            Ast::Class(c) => {
                assert!(!c.contains(b'a'));
                assert!(c.contains(b'b'));
            }
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn class_with_leading_bracket_literal() {
        match p("[]a]").ast {
            Ast::Class(c) => {
                assert!(c.contains(b']') && c.contains(b'a'));
            }
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn escapes() {
        match p(r"\x41").ast {
            Ast::Class(c) => assert!(c.contains(b'A')),
            other => panic!("unexpected ast {other:?}"),
        }
        match p(r"\d").ast {
            Ast::Class(c) => assert!(c.contains(b'3') && !c.contains(b'a')),
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse("(ab").is_err());
        assert!(parse("ab)").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("[abc").is_err());
        assert!(parse("[z-a]").is_err());
        assert!(parse(r"\x4").is_err());
        assert!(parse("a{5,2}").is_err());
        assert!(parse("a{9999}").is_err());
        assert!(parse("(?=x)").is_err());
    }

    #[test]
    fn dot_matches_any_byte() {
        match p(".").ast {
            Ast::Class(c) => assert_eq!(c.len(), 256),
            other => panic!("unexpected ast {other:?}"),
        }
    }
}
