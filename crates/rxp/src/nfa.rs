//! Thompson construction: [`Ast`] → non-deterministic
//! finite automaton with byte-class transitions and epsilon edges.

use crate::classes::ClassSet;
use crate::parser::Ast;

/// A state of the NFA.
#[derive(Debug, Clone, Default)]
pub struct State {
    /// Byte-class transitions `(class, target)`.
    pub on_byte: Vec<(ClassSet, usize)>,
    /// Epsilon transitions.
    pub eps: Vec<usize>,
}

/// A Thompson NFA with a single start and a single accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Flat arena of states.
    pub states: Vec<State>,
    /// Index of the start state.
    pub start: usize,
    /// Index of the accept state.
    pub accept: usize,
}

impl Nfa {
    /// Compiles an AST into an NFA.
    pub fn from_ast(ast: &Ast) -> Self {
        let mut b = Builder { states: Vec::new() };
        let start = b.push();
        let accept = b.push();
        b.compile(ast, start, accept);
        Nfa {
            states: b.states,
            start,
            accept,
        }
    }

    /// Epsilon-closure of a set of states, returned as a sorted, deduped
    /// state list.
    pub fn eps_closure(&self, seed: &[usize]) -> Vec<usize> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<usize> = seed.to_vec();
        for &s in seed {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &self.states[s].eps {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        (0..self.states.len()).filter(|&s| seen[s]).collect()
    }

    /// Whether the NFA accepts the empty string (start closure contains the
    /// accept state). Such patterns are rejected at [`Regex::compile`]
    /// because a streaming match counter would loop forever on them.
    ///
    /// [`Regex::compile`]: crate::Regex::compile
    pub fn matches_empty(&self) -> bool {
        self.eps_closure(&[self.start]).contains(&self.accept)
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the NFA has no states (never true for built NFAs).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Metadata of one rule inside a [`MergedNfa`].
#[derive(Debug, Clone)]
pub struct MergedRule {
    /// Start state in the merged arena.
    pub start: usize,
    /// Accept state in the merged arena (the rule tag target: reaching it
    /// means *this* rule matched).
    pub accept: usize,
    /// Rule pattern began with `^`.
    pub anchored_start: bool,
    /// Rule pattern ended with `$`.
    pub anchored_end: bool,
    /// Epsilon-closure of the rule's start state (sorted, merged-arena ids).
    pub start_closure: Vec<usize>,
}

/// The union of several rule NFAs in a single state arena, with per-state
/// rule tags — the input to fused multi-pattern subset construction.
///
/// Each rule keeps its own start/accept pair and anchor flags; states of
/// different rules are disjoint, so a subset of merged states decomposes
/// uniquely into per-rule subsets. This is what lets the fused DFA apply
/// each rule's match/reset semantics independently while scanning once.
#[derive(Debug, Clone)]
pub struct MergedNfa {
    /// Combined state arena (rule sub-arenas are contiguous and disjoint).
    pub states: Vec<State>,
    /// Per-rule metadata, in the order the rules were merged.
    pub rules: Vec<MergedRule>,
    /// Rule tag per state: which rule owns each merged state.
    pub rule_of: Vec<u16>,
    /// Whether each state belongs to its owning rule's start closure
    /// (such states survive that rule's post-match reset).
    pub in_start_closure: Vec<bool>,
    /// Sorted union of the start closures of every rule — the initial
    /// fused subset (all rules are live at offset 0).
    pub init: Vec<usize>,
    /// Sorted union of the start closures of the *unanchored-start* rules —
    /// re-injected after every byte so their matches may begin anywhere.
    pub reinject: Vec<usize>,
}

impl MergedNfa {
    /// Merges rule NFAs (with their anchor flags) into one tagged arena.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` rules are merged (callers group far
    /// below that).
    pub fn merge(rules: &[(&Nfa, bool, bool)]) -> Self {
        assert!(rules.len() <= u16::MAX as usize, "too many rules to merge");
        let total: usize = rules.iter().map(|(n, _, _)| n.len()).sum();
        let mut states: Vec<State> = Vec::with_capacity(total);
        let mut rule_of: Vec<u16> = Vec::with_capacity(total);
        let mut in_start_closure = vec![false; total];
        let mut merged_rules: Vec<MergedRule> = Vec::with_capacity(rules.len());
        let mut init: Vec<usize> = Vec::new();
        let mut reinject: Vec<usize> = Vec::new();
        for (i, &(nfa, anchored_start, anchored_end)) in rules.iter().enumerate() {
            let off = states.len();
            for s in &nfa.states {
                let mut shifted = s.clone();
                for (_, t) in shifted.on_byte.iter_mut() {
                    *t += off;
                }
                for t in shifted.eps.iter_mut() {
                    *t += off;
                }
                states.push(shifted);
                rule_of.push(i as u16);
            }
            let start_closure: Vec<usize> = nfa
                .eps_closure(&[nfa.start])
                .into_iter()
                .map(|s| s + off)
                .collect();
            for &s in &start_closure {
                in_start_closure[s] = true;
            }
            // Sub-arenas are appended in order, so closures concatenate
            // into already-sorted `init` / `reinject` lists.
            init.extend_from_slice(&start_closure);
            if !anchored_start {
                reinject.extend_from_slice(&start_closure);
            }
            merged_rules.push(MergedRule {
                start: nfa.start + off,
                accept: nfa.accept + off,
                anchored_start,
                anchored_end,
                start_closure,
            });
        }
        Self {
            states,
            rules: merged_rules,
            rule_of,
            in_start_closure,
            init,
            reinject,
        }
    }

    /// Number of merged states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the merged arena is empty (no rules merged).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

struct Builder {
    states: Vec<State>,
}

impl Builder {
    fn push(&mut self) -> usize {
        self.states.push(State::default());
        self.states.len() - 1
    }

    fn eps(&mut self, from: usize, to: usize) {
        self.states[from].eps.push(to);
    }

    /// Wires `ast` so that entering at `from` and matching leads to `to`.
    fn compile(&mut self, ast: &Ast, from: usize, to: usize) {
        match ast {
            Ast::Empty => self.eps(from, to),
            Ast::Class(cls) => self.states[from].on_byte.push((*cls, to)),
            Ast::Concat(items) => {
                let mut cur = from;
                for (i, item) in items.iter().enumerate() {
                    let next = if i + 1 == items.len() {
                        to
                    } else {
                        self.push()
                    };
                    self.compile(item, cur, next);
                    cur = next;
                }
            }
            Ast::Alt(alts) => {
                for alt in alts {
                    let (a, b) = (self.push(), self.push());
                    self.eps(from, a);
                    self.compile(alt, a, b);
                    self.eps(b, to);
                }
            }
            Ast::Repeat { node, min, max } => self.compile_repeat(node, *min, *max, from, to),
        }
    }

    fn compile_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>, from: usize, to: usize) {
        match max {
            None => {
                // min mandatory copies, then a Kleene loop.
                let mut cur = from;
                for _ in 0..min {
                    let next = self.push();
                    self.compile(node, cur, next);
                    cur = next;
                }
                // loop: cur --node--> cur, cur --eps--> to
                let (entry, back) = (self.push(), self.push());
                self.eps(cur, entry);
                self.compile(node, entry, back);
                self.eps(back, entry);
                self.eps(cur, to);
                self.eps(back, to);
            }
            Some(max) => {
                // min mandatory copies then (max-min) optional copies.
                let mut cur = from;
                for _ in 0..min {
                    let next = self.push();
                    self.compile(node, cur, next);
                    cur = next;
                }
                for _ in min..max {
                    let next = self.push();
                    self.compile(node, cur, next);
                    self.eps(cur, to);
                    cur = next;
                }
                self.eps(cur, to);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Naive NFA simulation for testing the construction directly.
    fn accepts(nfa: &Nfa, input: &[u8]) -> bool {
        let mut cur = nfa.eps_closure(&[nfa.start]);
        for &b in input {
            let mut next = Vec::new();
            for &s in &cur {
                for (cls, t) in &nfa.states[s].on_byte {
                    if cls.contains(b) && !next.contains(t) {
                        next.push(*t);
                    }
                }
            }
            cur = nfa.eps_closure(&next);
            if cur.is_empty() {
                return false;
            }
        }
        cur.contains(&nfa.accept)
    }

    fn nfa(pattern: &str) -> Nfa {
        Nfa::from_ast(&parse(pattern).unwrap().ast)
    }

    #[test]
    fn literal() {
        let n = nfa("abc");
        assert!(accepts(&n, b"abc"));
        assert!(!accepts(&n, b"ab"));
        assert!(!accepts(&n, b"abd"));
    }

    #[test]
    fn alternation() {
        let n = nfa("cat|dog");
        assert!(accepts(&n, b"cat"));
        assert!(accepts(&n, b"dog"));
        assert!(!accepts(&n, b"cow"));
    }

    #[test]
    fn star_plus_question() {
        let n = nfa("ab*c");
        assert!(accepts(&n, b"ac"));
        assert!(accepts(&n, b"abbbc"));
        let n = nfa("ab+c");
        assert!(!accepts(&n, b"ac"));
        assert!(accepts(&n, b"abc"));
        let n = nfa("ab?c");
        assert!(accepts(&n, b"ac"));
        assert!(accepts(&n, b"abc"));
        assert!(!accepts(&n, b"abbc"));
    }

    #[test]
    fn bounded_repeat() {
        let n = nfa("a{2,4}");
        assert!(!accepts(&n, b"a"));
        assert!(accepts(&n, b"aa"));
        assert!(accepts(&n, b"aaaa"));
        assert!(!accepts(&n, b"aaaaa"));
    }

    #[test]
    fn open_repeat() {
        let n = nfa("a{3,}");
        assert!(!accepts(&n, b"aa"));
        assert!(accepts(&n, b"aaa"));
        assert!(accepts(&n, b"aaaaaaa"));
    }

    #[test]
    fn empty_detection() {
        assert!(nfa("a*").matches_empty());
        assert!(!nfa("a+").matches_empty());
        assert!(nfa("a|").matches_empty());
    }

    #[test]
    fn nested_groups() {
        let n = nfa("(ab|cd)+e");
        assert!(accepts(&n, b"abe"));
        assert!(accepts(&n, b"abcde"));
        assert!(accepts(&n, b"cdabe"));
        assert!(!accepts(&n, b"e"));
    }
}
