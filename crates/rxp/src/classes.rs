//! Byte-class sets: 256-bit membership sets used by the regex AST, NFA
//! transitions, and DFA byte-class compression.

use serde::{Deserialize, Serialize};

/// A set of bytes represented as a 256-bit bitmap.
///
/// # Example
///
/// ```
/// use yala_rxp::ClassSet;
/// let digits = ClassSet::range(b'0', b'9');
/// assert!(digits.contains(b'5'));
/// assert!(!digits.contains(b'a'));
/// assert_eq!(digits.len(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ClassSet {
    bits: [u64; 4],
}

impl ClassSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The set of all 256 byte values (regex `.` in DOTALL mode; payload
    /// scanning treats `.` as any byte, as hardware scan engines do).
    pub fn any() -> Self {
        Self {
            bits: [u64::MAX; 4],
        }
    }

    /// A single byte.
    pub fn single(b: u8) -> Self {
        let mut s = Self::empty();
        s.insert(b);
        s
    }

    /// The inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(lo: u8, hi: u8) -> Self {
        assert!(lo <= hi, "inverted byte range");
        let mut s = Self::empty();
        for b in lo..=hi {
            s.insert(b);
        }
        s
    }

    /// Inserts one byte.
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Whether `b` is in the set.
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        let mut out = *self;
        for i in 0..4 {
            out.bits[i] |= other.bits[i];
        }
        out
    }

    /// Set complement.
    pub fn negate(&self) -> Self {
        let mut out = *self;
        for i in 0..4 {
            out.bits[i] = !out.bits[i];
        }
        out
    }

    /// Number of bytes in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Case-folds the set: for every ASCII letter present, inserts the other
    /// case as well (used by the `(?i)` flag).
    pub fn case_fold(&self) -> Self {
        let mut out = *self;
        for b in b'a'..=b'z' {
            if self.contains(b) {
                out.insert(b - 32);
            }
        }
        for b in b'A'..=b'Z' {
            if self.contains(b) {
                out.insert(b + 32);
            }
        }
        out
    }

    /// Smallest member byte, if any.
    pub fn first_byte(&self) -> Option<u8> {
        (0u16..256).map(|b| b as u8).find(|&b| self.contains(b))
    }

    /// Iterates over member bytes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).filter_map(move |b| {
            let b = b as u8;
            self.contains(b).then_some(b)
        })
    }
}

/// Builds the `\d` / `\w` / `\s` style predefined classes.
pub fn predefined(name: u8) -> Option<ClassSet> {
    let digits = ClassSet::range(b'0', b'9');
    let word = digits
        .union(&ClassSet::range(b'a', b'z'))
        .union(&ClassSet::range(b'A', b'Z'))
        .union(&ClassSet::single(b'_'));
    let mut space = ClassSet::empty();
    for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
        space.insert(b);
    }
    Some(match name {
        b'd' => digits,
        b'D' => digits.negate(),
        b'w' => word,
        b'W' => word.negate(),
        b's' => space,
        b'S' => space.negate(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_contains() {
        let s = ClassSet::single(b'x');
        assert!(s.contains(b'x'));
        assert!(!s.contains(b'y'));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn range_bounds_inclusive() {
        let s = ClassSet::range(b'a', b'c');
        assert!(s.contains(b'a') && s.contains(b'b') && s.contains(b'c'));
        assert!(!s.contains(b'd'));
    }

    #[test]
    fn negate_complements() {
        let s = ClassSet::range(0, 127).negate();
        assert!(!s.contains(5));
        assert!(s.contains(200));
        assert_eq!(s.len(), 128);
    }

    #[test]
    fn union_combines() {
        let s = ClassSet::single(b'a').union(&ClassSet::single(b'z'));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn any_has_all() {
        assert_eq!(ClassSet::any().len(), 256);
    }

    #[test]
    fn case_fold_adds_both_cases() {
        let s = ClassSet::range(b'a', b'c').case_fold();
        assert!(s.contains(b'A') && s.contains(b'B') && s.contains(b'C'));
        assert!(s.contains(b'a'));
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn predefined_classes() {
        assert!(predefined(b'd').unwrap().contains(b'7'));
        assert!(!predefined(b'd').unwrap().contains(b'x'));
        assert!(predefined(b'w').unwrap().contains(b'_'));
        assert!(predefined(b's').unwrap().contains(b' '));
        assert!(predefined(b'S').unwrap().contains(b'q'));
        assert!(predefined(b'q').is_none());
    }

    #[test]
    fn iter_ascending() {
        let s = ClassSet::range(b'0', b'2');
        let v: Vec<u8> = s.iter().collect();
        assert_eq!(v, vec![b'0', b'1', b'2']);
    }
}
