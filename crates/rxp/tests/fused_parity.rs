//! Fused-vs-oracle parity: the fused multi-pattern scan must produce
//! *byte-for-byte identical* [`ScanReport`]s to the per-rule reference
//! scan (`Ruleset::scan_per_rule`, one standalone DFA pass per rule) on
//! every input — seeds, planted-match payloads across MTBR levels, every
//! anchor flavour, and payload lengths 0–4096. The fused path is only a
//! performance strategy; any observable difference is a bug.

use yala_rxp::ruleset::match_seeds;
use yala_rxp::{l7_default_ruleset, Ruleset, ScanReport};

/// Deterministic LCG so the corpus is reproducible without pulling the
/// traffic crate (which depends on this one).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Filler alphabet inert against the default ruleset (mirrors the traffic
/// generator's choice).
const FILLER: &[u8] = b"qwzjkvyxubnmfdgh QWZJKVYXUBNM";

/// Builds a payload of `len` filler bytes with `planted` whole match seeds
/// embedded at random non-overlapping-ish offsets (one filler byte of
/// separation, like the traffic generator).
fn payload_with_seeds(rng: &mut Lcg, len: usize, planted: usize) -> Vec<u8> {
    let mut out: Vec<u8> = (0..len).map(|_| FILLER[rng.below(FILLER.len())]).collect();
    let seeds = match_seeds();
    for _ in 0..planted {
        let seed = seeds[rng.below(seeds.len())].1;
        if seed.len() + 2 >= len {
            continue;
        }
        let at = 1 + rng.below(len - seed.len() - 2);
        out[at..at + seed.len()].copy_from_slice(seed);
    }
    out
}

/// Asserts fused == oracle on one payload, also exercising the reusable
/// scratch-report path.
fn assert_parity(rs: &Ruleset, scratch: &mut ScanReport, payload: &[u8], what: &str) {
    let oracle = rs.scan_per_rule(payload);
    let fused = rs.scan(payload);
    assert_eq!(fused, oracle, "scan() diverged from oracle on {what}");
    rs.scan_into(payload, scratch);
    assert_eq!(
        *scratch, oracle,
        "scan_into() diverged from oracle on {what}"
    );
}

#[test]
fn default_ruleset_fuses_fully() {
    let rs = l7_default_ruleset();
    assert_eq!(
        rs.fused_rule_count(),
        rs.len(),
        "every default rule should fuse within the state budget"
    );
    assert!(rs.fused_state_count() > 0);
}

#[test]
fn parity_on_match_seed_corpus() {
    let rs = l7_default_ruleset();
    let mut scratch = ScanReport::default();
    for (name, seed) in match_seeds() {
        assert_parity(&rs, &mut scratch, seed, name);
        // Seed embedded mid-payload, front, and back.
        let mut rng = Lcg(0xC0FFEE ^ seed.len() as u64);
        for len in [64usize, 256, 1500] {
            let mut p = payload_with_seeds(&mut rng, len, 0);
            let at = (len - seed.len()) / 2;
            p[at..at + seed.len()].copy_from_slice(seed);
            assert_parity(&rs, &mut scratch, &p, name);
            p[..seed.len()].copy_from_slice(seed);
            assert_parity(&rs, &mut scratch, &p, name);
            let tail = len - seed.len();
            p[tail..].copy_from_slice(seed);
            assert_parity(&rs, &mut scratch, &p, name);
        }
    }
}

#[test]
fn parity_across_mtbr_levels() {
    let rs = l7_default_ruleset();
    let mut scratch = ScanReport::default();
    let mut rng = Lcg(42);
    for &mtbr in &[0.0f64, 100.0, 1000.0, 10_000.0] {
        for len in [60usize, 256, 1446, 4096] {
            for _ in 0..25 {
                let planted = (mtbr / 1e6 * len as f64).ceil() as usize;
                let p = payload_with_seeds(&mut rng, len, planted);
                assert_parity(&rs, &mut scratch, &p, &format!("mtbr={mtbr} len={len}"));
            }
        }
    }
}

#[test]
fn parity_on_payload_length_sweep() {
    let rs = l7_default_ruleset();
    let mut scratch = ScanReport::default();
    let mut rng = Lcg(7);
    for len in 0..=128 {
        let p = payload_with_seeds(&mut rng, len, usize::from(len > 24));
        assert_parity(&rs, &mut scratch, &p, &format!("len={len}"));
    }
    for len in (256..=4096).step_by(193) {
        let p = payload_with_seeds(&mut rng, len, 2);
        assert_parity(&rs, &mut scratch, &p, &format!("len={len}"));
    }
}

/// Every anchor flavour, including overlapping and resetting rules, on
/// crafted and random payloads.
#[test]
fn parity_on_anchor_flavours() {
    let rs = Ruleset::compile(vec![
        ("head", r"^GET [a-z]+"),
        ("tail", r"[0-9]{3}$"),
        ("exact", r"^HELLO$"),
        ("plain", r"abc"),
        ("overlap_a", r"ab"),
        ("overlap_b", r"b"),
        ("reset", r"aa"),
        ("ci", r"(?i)foo(bar)?"),
        ("alt", r"cat|dog|bird"),
        ("class", r"[xyz]{2,4}w"),
    ])
    .unwrap();
    let mut scratch = ScanReport::default();
    let crafted: &[&[u8]] = &[
        b"",
        b"GET abc 123",
        b"HELLO",
        b"HELLO ",
        b" HELLO",
        b"ab",
        b"bab",
        b"aaaa",
        b"aaaaaa",
        b"GET zzz FOOBAR cat dog xyzw 999",
        b"abcabcabc",
        b"xyzxyzw 123",
        b"foofoobar",
        b"catdogbird",
        b"GET a",
        b"123",
        b"12",
    ];
    for p in crafted {
        assert_parity(&rs, &mut scratch, p, &format!("crafted {:?}", p));
    }
    // Random payloads over a small alphabet rich in rule bytes, so anchors,
    // overlaps, and resets all fire frequently.
    let alpha = b"abcdogGET xyzw123HELOfr";
    let mut rng = Lcg(1234);
    for len in 0..200usize {
        let p: Vec<u8> = (0..len).map(|_| alpha[rng.below(alpha.len())]).collect();
        assert_parity(&rs, &mut scratch, &p, &format!("random len={len}"));
    }
    for _ in 0..50 {
        let len = 500 + rng.below(3596);
        let p: Vec<u8> = (0..len).map(|_| alpha[rng.below(alpha.len())]).collect();
        assert_parity(&rs, &mut scratch, &p, &format!("random long len={len}"));
    }
}

/// A budget too small to fuse anything must fall back to per-rule scanning
/// with identical reports — the strategy is invisible through the API.
#[test]
fn parity_under_forced_fallback() {
    let patterns = vec![
        ("http", r"(?i)(get|post) /[!-~]* http/1\.[01]"),
        ("ssh", r"(?i)ssh-[12]\.[0-9]"),
        ("sqli", r"(?i)' or 1=1"),
        ("tail", r"[0-9]{3}$"),
        ("head", r"^SSH"),
    ];
    let fused = Ruleset::compile(patterns.clone()).unwrap();
    let unfused = Ruleset::compile_with_budget(patterns.clone(), 1).unwrap();
    assert!(fused.fused_rule_count() > 0);
    assert_eq!(unfused.fused_rule_count(), 0, "budget 1 fuses nothing");
    // A mid-size budget splits: some rules fused, some fall back.
    let split = Ruleset::compile_with_budget(patterns, 40).unwrap();
    let mut rng = Lcg(99);
    let mut scratch = ScanReport::default();
    for _ in 0..60 {
        let len = rng.below(2048);
        let mut p = payload_with_seeds(&mut rng, len, 1);
        if len > 40 {
            p[..20].copy_from_slice(b"GET /idx http/1.1 qq");
        }
        let oracle = fused.scan_per_rule(&p);
        for (rs, what) in [(&fused, "fused"), (&unfused, "unfused"), (&split, "split")] {
            assert_eq!(rs.scan(&p), oracle, "{what} diverged");
            rs.scan_into(&p, &mut scratch);
            assert_eq!(scratch, oracle, "{what} scan_into diverged");
        }
    }
}

/// The scratch report must give identical results regardless of what it
/// held before (stale counts, wrong size).
#[test]
fn scratch_reuse_is_stateless() {
    let rs = l7_default_ruleset();
    let payload = b"GET /idx.html HTTP/1.1 qq SSH-2.0-OpenSSH_8.9";
    let expected = rs.scan(payload);
    let mut scratch = ScanReport {
        per_rule: vec![777; 3],
        total_matches: 99,
        bytes_scanned: 12345,
    };
    rs.scan_into(payload, &mut scratch);
    assert_eq!(scratch, expected);
}
