//! Offline profiling sweeps (§6): drive the simulator — the hardware
//! stand-in — with synthetic bench NFs at controlled contention levels and
//! record `(features, target throughput)` training samples.

use crate::memory_model::traffic_aware_features;
use rand::Rng;
use yala_ml::Dataset;
use yala_nf::bench::{mem_bench_with_cycles, regex_bench};
use yala_nf::NfKind;
use yala_sim::{CounterSample, ResourceKind, Simulator, WorkloadSpec};
use yala_traffic::TrafficProfile;

/// One synthetic memory-contention level: mem-bench's knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemLevel {
    /// Target cache-access rate, refs/s.
    pub car: f64,
    /// Working-set size, bytes.
    pub wss: f64,
    /// Compute intensity (decorrelates IPC/IRT from CAR).
    pub cycles: f64,
}

impl MemLevel {
    /// The zero-contention level.
    pub fn idle() -> Self {
        Self {
            car: 1.0,
            wss: 0.0,
            cycles: 0.0,
        }
    }

    /// The mem-bench workload realising this level.
    pub fn bench(&self) -> WorkloadSpec {
        mem_bench_with_cycles(self.car.max(1.0), self.wss, self.cycles)
    }

    /// Uniformly random level across the training ranges.
    pub fn random<R: Rng>(rng: &mut R) -> Self {
        Self {
            car: rng.gen_range(2.0e7..3.0e8),
            wss: rng.gen_range(0.5e6..24.0e6),
            cycles: *[60.0, 600.0, 2_400.0]
                .get(rng.gen_range(0..3))
                .expect("three variants"),
        }
    }
}

/// The default memory-contention training grid (CAR × WSS × intensity).
pub fn default_mem_grid() -> Vec<MemLevel> {
    let mut grid = Vec::new();
    for i in 0..8 {
        let car = 2.0e7 + i as f64 * 3.8e7; // 20 M .. 286 M refs/s
        for &wss_mb in &[0.5f64, 2.0, 6.0, 12.0, 24.0] {
            // Rotate intensity variants across the grid.
            let cycles = [60.0, 600.0, 2_400.0][(i as usize + wss_mb as usize) % 3];
            grid.push(MemLevel {
                car,
                wss: wss_mb * 1e6,
                cycles,
            });
        }
    }
    grid
}

/// Measures mem-bench's solo counter vector at a level — the contention
/// features used for that training sample.
pub fn bench_counters(sim: &mut Simulator, level: MemLevel) -> CounterSample {
    if level.wss == 0.0 && level.car <= 1.0 {
        return CounterSample::default();
    }
    sim.solo(&level.bench()).counters
}

/// Builds (or fetches from a per-thread cache) the profiled workload of an
/// NF at a traffic point. Workload construction replays hundreds of packets
/// through the real NF, so repeated measurements at the same traffic point
/// (ubiquitous in profiling sweeps) would otherwise dominate runtime. Cache
/// misses profile through a per-thread reusable [`yala_nf::Profiler`], so
/// even a sweep of all-distinct traffic points performs no per-packet
/// allocation.
pub fn cached_workload(kind: NfKind, traffic: TrafficProfile, seed: u64) -> WorkloadSpec {
    use std::cell::RefCell;
    use std::collections::HashMap;
    type Key = (NfKind, u32, u32, u64, u64);
    thread_local! {
        static CACHE: RefCell<HashMap<Key, WorkloadSpec>> = RefCell::new(HashMap::new());
        static PROFILER: RefCell<yala_nf::Profiler> =
            RefCell::new(yala_nf::Profiler::new());
    }
    let key = (
        kind,
        traffic.flow_count,
        traffic.packet_size,
        traffic.mtbr.to_bits(),
        seed,
    );
    CACHE.with(|c| {
        let mut map = c.borrow_mut();
        if map.len() > 8_192 {
            map.clear();
        }
        map.entry(key)
            .or_insert_with(|| {
                PROFILER.with(|p| kind.workload_with(&mut p.borrow_mut(), traffic, seed))
            })
            .clone()
    })
}

/// One traffic-aware profiling measurement: co-runs the target (profiled at
/// `traffic`) against mem-bench at `level`, returning the 10-dim feature
/// row and the measured throughput.
pub fn measure_traffic_sample(
    sim: &mut Simulator,
    kind: NfKind,
    traffic: TrafficProfile,
    level: MemLevel,
    seed: u64,
) -> ([f64; 10], f64) {
    let target = cached_workload(kind, traffic, seed);
    let features = traffic_aware_features(&bench_counters(sim, level), &traffic);
    let tput = if level.wss == 0.0 && level.car <= 1.0 {
        sim.solo(&target).throughput_pps
    } else {
        sim.co_run(&[target, level.bench()]).outcomes[0].throughput_pps
    };
    (features, tput)
}

/// Fixed-traffic memory profiling (the §4.1.2 model): sweeps `grid` at one
/// traffic profile and returns a 7-feature dataset.
pub fn memory_dataset_fixed(
    sim: &mut Simulator,
    target: &WorkloadSpec,
    grid: &[MemLevel],
) -> Dataset {
    let mut ds = Dataset::new(7);
    ds.push(
        &CounterSample::default().as_features(),
        sim.solo(target).throughput_pps,
    );
    for &level in grid {
        let features = bench_counters(sim, level);
        let tput = sim.co_run(&[target.clone(), level.bench()]).outcomes[0].throughput_pps;
        ds.push(&features.as_features(), tput);
    }
    ds
}

/// The contender description of a mem-bench instance (known to the
/// operator; counters measured solo).
pub fn mem_bench_contender(sim: &mut Simulator, level: MemLevel) -> crate::Contender {
    crate::Contender::memory_only("mem-bench", bench_counters(sim, level))
}

/// The contender description of a regex-bench instance. Its service-time
/// parameters are known (it is the operator's own tool, §4.1.1), so the
/// accelerator pressure is computed from the NIC's service law directly.
pub fn regex_bench_contender(
    sim: &mut Simulator,
    offered_rps: f64,
    bytes: f64,
    mtbr: f64,
) -> crate::Contender {
    let bench = regex_bench(offered_rps, bytes, mtbr);
    let counters = sim.solo(&bench).counters;
    let service = sim
        .spec()
        .accel(ResourceKind::Regex)
        .expect("NIC has a regex engine")
        .service_time(bytes, mtbr * bytes / 1e6);
    crate::Contender {
        name: "regex-bench".to_string(),
        counters,
        accel: vec![crate::contender::AccelContention {
            kind: ResourceKind::Regex,
            queues: 1.0,
            service_s: service,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_sim::NicSpec;

    fn sim() -> Simulator {
        Simulator::new(NicSpec::bluefield2())
    }

    #[test]
    fn grid_covers_ranges() {
        let grid = default_mem_grid();
        assert_eq!(grid.len(), 40);
        assert!(grid.iter().any(|l| l.wss >= 20e6));
        assert!(grid.iter().any(|l| l.car <= 3e7));
        assert!(grid.iter().any(|l| l.car >= 2.5e8));
        // All three intensity variants present.
        for c in [60.0, 600.0, 2_400.0] {
            assert!(grid.iter().any(|l| l.cycles == c), "missing cycles {c}");
        }
    }

    #[test]
    fn idle_level_yields_zero_features() {
        let mut sim = sim();
        let c = bench_counters(&mut sim, MemLevel::idle());
        assert_eq!(c.as_features(), [0.0; 7]);
    }

    #[test]
    fn fixed_dataset_shape_and_monotonicity() {
        let mut sim = sim();
        let target = NfKind::FlowStats.workload(TrafficProfile::default(), 1);
        let grid = vec![
            MemLevel {
                car: 3e7,
                wss: 4e6,
                cycles: 60.0,
            },
            MemLevel {
                car: 2.5e8,
                wss: 12e6,
                cycles: 60.0,
            },
        ];
        let ds = memory_dataset_fixed(&mut sim, &target, &grid);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.n_features(), 7);
        // Solo (row 0) >= light (row 1) >= heavy (row 2).
        assert!(ds.target(0) >= ds.target(1));
        assert!(ds.target(1) > ds.target(2));
    }

    #[test]
    fn traffic_sample_embeds_profile() {
        let mut sim = sim();
        let t = TrafficProfile::new(8_000, 512, 300.0);
        let (x, tput) = measure_traffic_sample(
            &mut sim,
            NfKind::FlowStats,
            t,
            MemLevel {
                car: 1e8,
                wss: 6e6,
                cycles: 60.0,
            },
            3,
        );
        assert_eq!(&x[7..], &[8_000.0, 512.0, 300.0]);
        assert!(tput > 0.0);
    }

    #[test]
    fn regex_bench_contender_has_known_pressure() {
        let mut sim = sim();
        let c = regex_bench_contender(&mut sim, 1e6, 1446.0, 600.0);
        let expected = 5e-9 + 1446.0 * 0.08e-9 + 600.0 * 1446.0 / 1e6 * 180e-9;
        assert!((c.pressure_on(ResourceKind::Regex) - expected).abs() / expected < 1e-9);
    }
}
