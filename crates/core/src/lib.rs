//! # yala-core — the Yala prediction framework (the paper's contribution)
//!
//! Yala predicts the throughput an on-NIC network function will achieve
//! when co-located with other NFs, under **multi-resource contention**
//! (memory subsystem + hardware accelerators) and **varying traffic
//! attributes**. The design follows the paper exactly:
//!
//! * [`accel_model`] — white-box round-robin queueing model of accelerator
//!   contention (Eq. 1) with traffic-aware service times (Eq. 4), fitted by
//!   co-running the NF with a backlogged bench of known parameters.
//! * [`memory_model`] — black-box gradient-boosting model over the
//!   competitors' aggregate Table 11 counters, augmented with the target's
//!   traffic-attribute vector (§5.1.2).
//! * [`composition`] — execution-pattern-based composition: Eq. 2 for
//!   pipelines, Eq. 3 for run-to-completion, plus the sum/min baselines and
//!   the measurement-based pattern detector (§4.2).
//! * [`adaptive`] — adaptive profiling (Algorithm 1): prune insensitive
//!   traffic attributes, then binary-search sampling where solo throughput
//!   moves (§5.2); random/full profiling for cost comparisons.
//! * [`engine`] — the parallel scenario engine: independent simulator
//!   scenarios (training sweeps, fleet profiling, arrival preparation)
//!   dispatched across a std-thread worker pool with deterministic
//!   per-scenario seeding — bit-identical to the sequential path.
//! * [`profiler`] — the offline profiling sweeps driving the simulator with
//!   the synthetic benches (§6).
//! * [`profile_cache`] — the process-wide profile cache: deterministic,
//!   concurrency-safe memoization of `(kind, traffic, seed)` measurements,
//!   with quantized traffic keys so near-identical tenants share one
//!   measurement and a hit is bitwise the fresh result.
//! * [`predictor`] — [`YalaModel`]: train offline, then predict for any
//!   proposed co-location.
//! * [`observe`] — the online-refinement loop: audited in-production
//!   `(context, outcome)` pairs buffered into an [`ObservationBuffer`]
//!   and absorbed back into the trained banks ([`bank::ModelBank::refine`]),
//!   turning train-once values into versioned, refinable state.
//!
//! # Example
//!
//! ```no_run
//! use yala_core::{TrainConfig, YalaModel};
//! use yala_core::profiler::{mem_bench_contender, MemLevel};
//! use yala_nf::NfKind;
//! use yala_sim::{NicSpec, Simulator};
//! use yala_traffic::TrafficProfile;
//!
//! let mut sim = Simulator::with_noise(NicSpec::bluefield2(), 0.01, 7);
//! let model = YalaModel::train(&mut sim, NfKind::FlowMonitor, &TrainConfig::default());
//!
//! let traffic = TrafficProfile::new(64_000, 1024, 800.0);
//! let solo = sim.solo(&NfKind::FlowMonitor.workload(traffic, 1)).throughput_pps;
//! let competitor = mem_bench_contender(&mut sim, MemLevel { car: 1e8, wss: 6e6, cycles: 60.0 });
//! let predicted = model.predict(solo, &traffic, &[competitor]);
//! println!("predicted throughput: {predicted:.0} pps");
//! ```

pub mod accel_model;
pub mod adaptive;
pub mod bank;
pub mod composition;
pub mod contender;
pub mod engine;
pub mod memory_model;
pub mod observe;
pub mod predictor;
pub mod profile_cache;
pub mod profiler;
pub mod qos;

pub use accel_model::{AccelServiceModel, InferConfig};
pub use adaptive::{AdaptiveConfig, ProfilingRun, TrafficRanges};
pub use bank::ModelBank;
pub use composition::{compose, compose_min, compose_rtc, compose_sum, detect_pattern};
pub use contender::{AccelContention, Contender};
pub use engine::Engine;
pub use memory_model::MemoryModel;
pub use observe::{Observation, ObservationBuffer, Refinable};
pub use predictor::{Composition, TrainConfig, YalaModel};
pub use profile_cache::{
    profile_seed, CacheStats, ProfileCache, ProfileEntry, ProfileKey, SoloProfile, TrafficKey,
};
pub use qos::QosClass;
