//! Execution-pattern-based composition (§4.2): combining per-resource
//! throughput predictions into an end-to-end prediction, plus the naive
//! sum/min baselines of §2.2.1 and the pattern-detection procedure.
//!
//! Per-resource models produce `T_k`: the predicted end-to-end throughput
//! if *only* resource `k` were contended (each ≤ `T_solo`). Then:
//!
//! * **Pipeline (Eq. 2)** — `T = T_solo − max_k ΔT_k` where
//!   `ΔT_k = T_solo − T_k`: the slowest stage dictates throughput.
//! * **Run-to-completion (Eq. 3)** — per-packet resource times add:
//!   `1/T = Σ_k 1/T_k − (r−1)/T_solo`.
//! * **Sum baseline** — `T = T_solo − Σ_k ΔT_k` (over-subtracts for
//!   pipelines).
//! * **Min baseline** — identical to Eq. 2 (the paper's "min composition"
//!   takes the maximum predicted loss); inaccurate for run-to-completion.

use yala_sim::ExecutionPattern;

/// Composes per-resource throughputs with the paper's Eq. 2 / Eq. 3
/// according to `pattern`.
///
/// # Panics
///
/// Panics if `t_solo` is not positive or `per_resource` is empty.
pub fn compose(pattern: ExecutionPattern, t_solo: f64, per_resource: &[f64]) -> f64 {
    validate(t_solo, per_resource);
    match pattern {
        ExecutionPattern::Pipeline => compose_min(t_solo, per_resource),
        ExecutionPattern::RunToCompletion => compose_rtc(t_solo, per_resource),
    }
}

/// Eq. 2 / "min composition": the largest per-resource drop wins.
pub fn compose_min(t_solo: f64, per_resource: &[f64]) -> f64 {
    validate(t_solo, per_resource);
    per_resource
        .iter()
        .fold(t_solo, |acc, &t| acc.min(t.min(t_solo)))
        .max(0.0)
}

/// "Sum composition": per-resource drops add (§2.2.1 baseline).
pub fn compose_sum(t_solo: f64, per_resource: &[f64]) -> f64 {
    validate(t_solo, per_resource);
    let total_drop: f64 = per_resource
        .iter()
        .map(|&t| (t_solo - t.min(t_solo)).max(0.0))
        .sum();
    (t_solo - total_drop).max(0.0)
}

/// Eq. 3: run-to-completion composition of sojourn times.
pub fn compose_rtc(t_solo: f64, per_resource: &[f64]) -> f64 {
    validate(t_solo, per_resource);
    let r = per_resource.len() as f64;
    let inv: f64 = per_resource
        .iter()
        .map(|&t| 1.0 / t.min(t_solo).max(1e-9))
        .sum::<f64>()
        - (r - 1.0) / t_solo;
    (1.0 / inv).clamp(0.0, t_solo)
}

fn validate(t_solo: f64, per_resource: &[f64]) {
    assert!(t_solo > 0.0, "solo throughput must be positive");
    assert!(
        !per_resource.is_empty(),
        "need at least one per-resource prediction"
    );
}

/// Detects an NF's execution pattern from four throughput measurements
/// (§4.2 "Detecting execution pattern"): solo, under memory-only
/// contention, under accelerator-only contention, and under both. The
/// pattern whose composition law better explains the combined measurement
/// wins.
pub fn detect_pattern(
    t_solo: f64,
    t_mem_only: f64,
    t_accel_only: f64,
    t_both: f64,
) -> ExecutionPattern {
    assert!(t_solo > 0.0, "solo throughput must be positive");
    let per_resource = [t_mem_only, t_accel_only];
    let pred_pipeline = compose_min(t_solo, &per_resource);
    let pred_rtc = compose_rtc(t_solo, &per_resource);
    if (pred_pipeline - t_both).abs() <= (pred_rtc - t_both).abs() {
        ExecutionPattern::Pipeline
    } else {
        ExecutionPattern::RunToCompletion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_takes_worst_resource() {
        // solo 100, memory-contended 80, regex-contended 60.
        assert_eq!(
            compose(ExecutionPattern::Pipeline, 100.0, &[80.0, 60.0]),
            60.0
        );
    }

    #[test]
    fn sum_adds_drops() {
        assert_eq!(compose_sum(100.0, &[80.0, 60.0]), 40.0);
        assert_eq!(
            compose_sum(100.0, &[50.0, 30.0, 90.0]),
            0.0,
            "clamped at zero"
        );
    }

    #[test]
    fn rtc_compounds_harmonically() {
        // 1/T = 1/80 + 1/60 − 1/100 = 0.0125 + 0.016667 − 0.01 = 0.019167
        let t = compose(ExecutionPattern::RunToCompletion, 100.0, &[80.0, 60.0]);
        assert!((t - 1.0 / 0.019166666).abs() < 0.01, "{t}");
        // RTC lies below pipeline (both resources hurt).
        assert!(t < 60.0);
        // But above the sum baseline (sum double-counts solo time).
        assert!(t > compose_sum(100.0, &[80.0, 60.0]));
    }

    #[test]
    fn uncontended_resources_change_nothing() {
        for pattern in [
            ExecutionPattern::Pipeline,
            ExecutionPattern::RunToCompletion,
        ] {
            let t = compose(pattern, 100.0, &[100.0, 100.0]);
            assert!((t - 100.0).abs() < 1e-9, "{pattern}: {t}");
        }
    }

    #[test]
    fn single_resource_reduces_to_that_resource() {
        for pattern in [
            ExecutionPattern::Pipeline,
            ExecutionPattern::RunToCompletion,
        ] {
            let t = compose(pattern, 100.0, &[70.0]);
            assert!((t - 70.0).abs() < 1e-6, "{pattern}: {t}");
        }
    }

    #[test]
    fn per_resource_above_solo_is_clamped() {
        // A model may predict above solo (noise); composition must clamp.
        assert_eq!(compose_min(100.0, &[120.0]), 100.0);
        let t = compose_rtc(100.0, &[120.0, 80.0]);
        assert!((t - 80.0).abs() < 1e-6);
    }

    #[test]
    fn detect_pattern_pipeline_case() {
        // Ground truth behaves like min: both = worst single.
        assert_eq!(
            detect_pattern(100.0, 80.0, 60.0, 60.5),
            ExecutionPattern::Pipeline
        );
    }

    #[test]
    fn detect_pattern_rtc_case() {
        // Ground truth compounds: both < worst single.
        let both = compose_rtc(100.0, &[80.0, 60.0]);
        assert_eq!(
            detect_pattern(100.0, 80.0, 60.0, both + 0.5),
            ExecutionPattern::RunToCompletion
        );
    }

    #[test]
    #[should_panic(expected = "at least one per-resource")]
    fn empty_resources_panic() {
        compose(ExecutionPattern::Pipeline, 1.0, &[]);
    }
}
