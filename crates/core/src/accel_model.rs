//! White-box queueing model for hardware accelerators (§4.1.1, Eq. 1) with
//! traffic-aware service times (§5.1.1, Eq. 4), and the black-box parameter
//! inference procedure that fits it without NF source code.
//!
//! The accelerator schedules per-NF request queues round-robin, so at
//! equilibrium the target's throughput on the accelerator is
//!
//! ```text
//! T_i = n_i / (n_i·t_i + Σ_{j≠i} n_j·t_j)            (Eq. 1)
//! t_j(m) = t_{j,0} + a_j·m                            (Eq. 4, m = MTBR)
//! ```
//!
//! Parameters `(n_i, t_i)` are inferred by co-running the NF with a
//! *backlogged* bench whose own parameters are known: measuring both
//! equilibrium throughputs yields `n_i = T_i/T_bench · n_bench` and
//! `t_i = (n_b/T_b − n_b·s_b)/n_i`. Repeating at several MTBRs and fitting
//! a line gives the traffic-aware law.

use crate::contender::{total_pressure, Contender};
use serde::{Deserialize, Serialize};
use yala_ml::{Dataset, LinearRegression};
use yala_sim::{ResourceKind, Simulator, WorkloadSpec};

/// A fitted per-NF accelerator service model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelServiceModel {
    /// Which accelerator this models.
    pub kind: ResourceKind,
    /// Inferred effective queue count `n_i` (may be fractional: it folds in
    /// how many cores keep the queues busy).
    pub queues: f64,
    /// Base per-request service time `t_{i,0}`, seconds.
    pub t0: f64,
    /// Extra service time per unit MTBR (seconds per matches/MB).
    pub a: f64,
}

impl AccelServiceModel {
    /// Service time at a given MTBR (Eq. 4's `t_j`).
    pub fn service_time(&self, mtbr: f64) -> f64 {
        (self.t0 + self.a * mtbr).max(1e-12)
    }

    /// Throughput cap on this accelerator when co-located with
    /// `contenders` (Eq. 1 / Eq. 4). This is the per-resource prediction a
    /// *pipeline* NF composes with.
    pub fn contended_cap(&self, mtbr: f64, contenders: &[Contender]) -> f64 {
        let own = self.queues * self.service_time(mtbr);
        let others = total_pressure(contenders, self.kind);
        self.queues / (own + others)
    }

    /// Throughput cap when running alone (`1/t_i`).
    pub fn solo_cap(&self, mtbr: f64) -> f64 {
        self.contended_cap(mtbr, &[])
    }

    /// End-to-end throughput under accelerator-only contention for a
    /// *run-to-completion* NF. Two effects bound it:
    ///
    /// 1. Sojourn growth: each request waits the competitors' round-time
    ///    share, spread over the NF's cores —
    ///    `1/T = 1/T_solo + Σ_j n_j·t_j / cores`.
    /// 2. The Eq. 1 turn-rate cap: the accelerator serves the NF's queues
    ///    once per round regardless of cores.
    pub fn rtc_end_to_end(
        &self,
        solo_tput: f64,
        mtbr: f64,
        cores: f64,
        contenders: &[Contender],
    ) -> f64 {
        assert!(solo_tput > 0.0, "solo throughput must be positive");
        assert!(cores > 0.0, "cores must be positive");
        let others = total_pressure(contenders, self.kind);
        let sojourn_bound = 1.0 / (1.0 / solo_tput + others / cores);
        sojourn_bound.min(self.contended_cap(mtbr, contenders))
    }
}

/// Configuration of the inference procedure.
#[derive(Debug, Clone)]
pub struct InferConfig {
    /// MTBR sample points for the Eq. 4 line fit (matches/MB).
    pub mtbrs: Vec<f64>,
    /// Bench request size, bytes.
    pub bench_bytes: f64,
    /// Bench MTBR: high enough that the target spends most of its time on
    /// the accelerator at equilibrium (paper's setup).
    pub bench_mtbr: f64,
    /// Bench offered request rate (effectively backlogged).
    pub bench_offered_rps: f64,
}

impl Default for InferConfig {
    fn default() -> Self {
        Self {
            mtbrs: vec![50.0, 300.0, 600.0, 900.0, 1150.0],
            bench_bytes: 1446.0,
            // Heavy enough that the target "spends most of its time on
            // regex" at equilibrium (§4.1.1) — a ~13 µs request dwarfs any
            // NF's CPU stage, making the inference asymptotically exact.
            bench_mtbr: 50_000.0,
            bench_offered_rps: 1e12,
        }
    }
}

/// Infers an [`AccelServiceModel`] for one NF on one accelerator.
///
/// `workload_at(mtbr)` must produce the target's workload profiled under
/// traffic with the given MTBR (other attributes fixed at the training
/// defaults).
///
/// Returns `None` if the NF does not use the accelerator.
pub fn infer_service_model(
    sim: &mut Simulator,
    kind: ResourceKind,
    workload_at: &mut dyn FnMut(f64) -> WorkloadSpec,
    cfg: &InferConfig,
) -> Option<AccelServiceModel> {
    let probe = workload_at(cfg.mtbrs[0]);
    if !probe.uses(kind) {
        return None;
    }
    let bench_service = sim
        .spec()
        .accel(kind)
        .expect("NIC provides the accelerator")
        .service_time(cfg.bench_bytes, cfg.bench_mtbr * cfg.bench_bytes / 1e6);

    let mut ds = Dataset::new(1);
    let mut queue_estimates = Vec::new();
    for &mtbr in &cfg.mtbrs {
        let target = workload_at(mtbr);
        let bench = bench_for(kind, cfg);
        let report = sim.co_run(&[target, bench]);
        let t_target = report.outcomes[0].throughput_pps;
        let t_bench = report.outcomes[1].throughput_pps;
        if t_bench <= 0.0 || t_target <= 0.0 {
            continue;
        }
        // n_b = 1 queue for the bench.
        let n_i = t_target / t_bench;
        let denominator = 1.0 / t_bench; // n_b / T_b = Σ n_j t_j
        let t_i = (denominator - bench_service) / n_i;
        if t_i <= 0.0 {
            continue;
        }
        queue_estimates.push(n_i);
        ds.push(&[mtbr], t_i);
    }
    if ds.len() < 2 {
        return None;
    }
    let line = LinearRegression::fit(&ds).ok()?;
    let queues = median(&mut queue_estimates);
    Some(AccelServiceModel {
        kind,
        queues,
        t0: line.intercept().max(1e-12),
        a: line.coefficients()[0].max(0.0),
    })
}

fn bench_for(kind: ResourceKind, cfg: &InferConfig) -> WorkloadSpec {
    match kind {
        ResourceKind::Regex => {
            yala_nf::bench::regex_bench(cfg.bench_offered_rps, cfg.bench_bytes, cfg.bench_mtbr)
        }
        ResourceKind::Compression => {
            yala_nf::bench::compression_bench(cfg.bench_offered_rps, cfg.bench_bytes)
        }
        other => panic!("no inference bench for {other}"),
    }
}

fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty estimates");
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    values[values.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_nf::NfKind;
    use yala_sim::NicSpec;
    use yala_traffic::TrafficProfile;

    fn sim() -> Simulator {
        Simulator::new(NicSpec::bluefield2())
    }

    #[test]
    fn eq4_service_time_is_affine() {
        let m = AccelServiceModel {
            kind: ResourceKind::Regex,
            queues: 1.0,
            t0: 100e-9,
            a: 0.2e-9,
        };
        assert!((m.service_time(600.0) - 220e-9).abs() < 1e-15);
        assert!((m.solo_cap(600.0) - 1.0 / 220e-9).abs() < 1.0);
    }

    #[test]
    fn infers_flowmonitor_regex_model() {
        let mut sim = sim();
        let mut workload_at =
            |mtbr: f64| NfKind::FlowMonitor.workload(TrafficProfile::new(16_000, 1500, mtbr), 11);
        let model = infer_service_model(
            &mut sim,
            ResourceKind::Regex,
            &mut workload_at,
            &InferConfig::default(),
        )
        .expect("flowmonitor uses regex");
        // Under a sufficiently heavy bench the NF is backlogged on its
        // single queue, so the inference recovers the true queue count and
        // per-request service law.
        assert!(
            model.queues > 0.8 && model.queues < 1.3,
            "queues {}",
            model.queues
        );
        let hw = |mtbr: f64| 5e-9 + 1446.0 * 0.08e-9 + mtbr * 1446.0 / 1e6 * 180e-9;
        // t̂(m) should track the true per-request time within ~15%.
        for mtbr in [100.0, 600.0, 1000.0] {
            let modelled = model.service_time(mtbr);
            let truth = hw(mtbr);
            let err = (modelled - truth).abs() / truth;
            assert!(err < 0.15, "mtbr {mtbr}: modelled {modelled}, true {truth}");
        }
    }

    #[test]
    fn returns_none_for_non_users() {
        let mut sim = sim();
        let mut workload_at = |_: f64| NfKind::FlowStats.workload(TrafficProfile::default(), 3);
        let model = infer_service_model(
            &mut sim,
            ResourceKind::Regex,
            &mut workload_at,
            &InferConfig::default(),
        );
        assert!(model.is_none());
    }

    #[test]
    fn contended_cap_matches_simulator_equilibrium() {
        // Fit the model for a synthetic pipeline regex NF, then check Eq. 1
        // against a fresh co-run with a different competitor level.
        let mut sim = sim();
        let mut workload_at = |mtbr: f64| {
            let w = yala_nf::bench::regex_nf("target", 1446.0, mtbr);
            WorkloadSpec {
                name: "target".into(),
                ..w
            }
        };
        let model = infer_service_model(
            &mut sim,
            ResourceKind::Regex,
            &mut workload_at,
            &InferConfig::default(),
        )
        .expect("regex NF");
        // Competitor: another backlogged regex workload with known service.
        let comp_mtbr = 1_500.0;
        let comp_service = sim
            .spec()
            .accel(ResourceKind::Regex)
            .unwrap()
            .service_time(1446.0, comp_mtbr * 1446.0 / 1e6);
        let contender = Contender::memory_only("comp", Default::default()).with_accel(
            crate::contender::AccelContention {
                kind: ResourceKind::Regex,
                queues: 1.0,
                service_s: comp_service,
            },
        );
        let predicted = model.contended_cap(600.0, std::slice::from_ref(&contender));
        let truth = {
            let target = workload_at(600.0);
            let comp = yala_nf::bench::regex_bench(1e12, 1446.0, comp_mtbr);
            sim.co_run(&[target, comp]).outcomes[0].throughput_pps
        };
        let err = (predicted - truth).abs() / truth;
        assert!(err < 0.1, "Eq.1 prediction {predicted} vs truth {truth}");
    }
}
