//! Descriptions of *competing* workloads as Yala sees them at prediction
//! time: a memory-side contentiousness vector (solo counters) plus, per
//! accelerator, the queue count and per-request service time that enter the
//! round-robin model (Eq. 1).

use yala_sim::{CounterSample, ResourceKind};

/// One competitor's presence on one accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelContention {
    /// Which accelerator.
    pub kind: ResourceKind,
    /// Request queues the competitor holds open (the paper's `n_j`).
    pub queues: f64,
    /// Its per-request service time `t_j` (for NFs: from its fitted
    /// service-time law at its traffic's MTBR), seconds.
    pub service_s: f64,
}

impl AccelContention {
    /// The competitor's round-time contribution `n_j · t_j` (Eq. 1).
    pub fn pressure_s(&self) -> f64 {
        self.queues * self.service_s
    }
}

/// Everything Yala knows about one competitor when predicting a target's
/// throughput: no source code, only profiled observables.
#[derive(Debug, Clone, PartialEq)]
pub struct Contender {
    /// Display name.
    pub name: String,
    /// The competitor's solo counter vector (its memory contentiousness).
    pub counters: CounterSample,
    /// Its accelerator presence, one entry per accelerator it uses.
    pub accel: Vec<AccelContention>,
}

impl Contender {
    /// A memory-only contender (e.g. mem-bench or a header-only NF).
    pub fn memory_only(name: impl Into<String>, counters: CounterSample) -> Self {
        Self {
            name: name.into(),
            counters,
            accel: Vec::new(),
        }
    }

    /// Adds accelerator presence (builder style).
    pub fn with_accel(mut self, accel: AccelContention) -> Self {
        self.accel.push(accel);
        self
    }

    /// Total round-time pressure this contender puts on accelerator `kind`.
    pub fn pressure_on(&self, kind: ResourceKind) -> f64 {
        self.accel
            .iter()
            .filter(|a| a.kind == kind)
            .map(|a| a.pressure_s())
            .sum()
    }
}

/// Aggregates competitor solo counters into the memory model's feature view.
pub fn aggregate_counters(contenders: &[Contender]) -> CounterSample {
    CounterSample::aggregate(contenders.iter().map(|c| &c.counters))
}

/// Sums all contenders' pressure on accelerator `kind` (the
/// `Σ_{j≠i} n_j t_j` term of Eq. 1).
pub fn total_pressure(contenders: &[Contender], kind: ResourceKind) -> f64 {
    contenders.iter().map(|c| c.pressure_on(kind)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_is_queues_times_service() {
        let a = AccelContention {
            kind: ResourceKind::Regex,
            queues: 2.0,
            service_s: 3e-7,
        };
        assert!((a.pressure_s() - 6e-7).abs() < 1e-18);
    }

    #[test]
    fn contender_pressure_filters_by_kind() {
        let c = Contender::memory_only("x", CounterSample::default())
            .with_accel(AccelContention {
                kind: ResourceKind::Regex,
                queues: 1.0,
                service_s: 1e-7,
            })
            .with_accel(AccelContention {
                kind: ResourceKind::Compression,
                queues: 1.0,
                service_s: 5e-7,
            });
        assert!((c.pressure_on(ResourceKind::Regex) - 1e-7).abs() < 1e-18);
        assert!((c.pressure_on(ResourceKind::Compression) - 5e-7).abs() < 1e-18);
        assert_eq!(c.pressure_on(ResourceKind::Crypto), 0.0);
    }

    #[test]
    fn totals_across_contenders() {
        let mk = |s: f64| {
            Contender::memory_only("x", CounterSample::default()).with_accel(AccelContention {
                kind: ResourceKind::Regex,
                queues: 1.0,
                service_s: s,
            })
        };
        let cs = [mk(1e-7), mk(2e-7)];
        assert!((total_pressure(&cs, ResourceKind::Regex) - 3e-7).abs() < 1e-18);
    }

    #[test]
    fn aggregate_counters_sums() {
        let a = CounterSample {
            l2crd: 5.0,
            ..Default::default()
        };
        let b = CounterSample {
            l2crd: 7.0,
            ..Default::default()
        };
        let cs = [
            Contender::memory_only("a", a),
            Contender::memory_only("b", b),
        ];
        assert_eq!(aggregate_counters(&cs).l2crd, 12.0);
    }
}
