//! The end-to-end Yala predictor (§3): trains per-resource models offline
//! and composes them by detected execution pattern at prediction time.

use crate::accel_model::{infer_service_model, AccelServiceModel, InferConfig};
use crate::adaptive::{adaptive_profile, AdaptiveConfig, TrafficRanges};
use crate::composition::{compose, compose_min, compose_sum, detect_pattern};
use crate::contender::{aggregate_counters, AccelContention, Contender};
use crate::memory_model::{
    traffic_aware_features, MemoryModel, N_COUNTER_FEATURES, N_TRAFFIC_FEATURES,
};
use crate::observe::{Observation, Refinable};
use crate::profiler::{memory_dataset_fixed, MemLevel};
use yala_ml::{Dataset, GbrParams};
use yala_nf::NfKind;
use yala_sim::{CounterSample, ExecutionPattern, ResourceKind, Simulator};
use yala_traffic::TrafficProfile;

/// Composition variants, for the §2.2.1 / Table 4 ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Composition {
    /// Yala's execution-pattern-based composition (Eq. 2 / Eq. 3).
    ExecutionPattern,
    /// Naive sum of per-resource drops.
    Sum,
    /// Naive max-drop ("min composition").
    Min,
}

/// Training configuration for [`YalaModel::train`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Traffic-attribute ranges to profile over.
    pub ranges: TrafficRanges,
    /// Adaptive-profiling hyper-parameters.
    pub adaptive: AdaptiveConfig,
    /// Accelerator-inference settings.
    pub infer: InferConfig,
    /// GBR hyper-parameters for the memory model.
    pub gbr: GbrParams,
    /// Seed for the GBR.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            ranges: TrafficRanges::default(),
            adaptive: AdaptiveConfig::default(),
            infer: InferConfig::default(),
            // More, slower stages than sklearn's default: the profiling
            // sets are small (quota-bound), so shrinkage buys smoothness.
            gbr: GbrParams {
                n_estimators: 300,
                learning_rate: 0.05,
                ..GbrParams::default()
            },
            seed: 23,
        }
    }
}

/// A trained Yala model for one NF.
#[derive(Debug, Clone, PartialEq)]
pub struct YalaModel {
    /// NF name.
    pub name: String,
    /// Detected execution pattern.
    pub pattern: ExecutionPattern,
    /// Black-box memory model (traffic-aware unless trained fixed).
    pub memory: MemoryModel,
    /// White-box accelerator models, one per accelerator the NF uses.
    pub accels: Vec<AccelServiceModel>,
    /// Cores the NF deploys with (observable configuration, not source).
    pub cores: f64,
    /// Which traffic attributes mattered during profiling.
    pub kept_attributes: [bool; 3],
    /// Measurements spent in offline profiling.
    pub profiling_cost: usize,
}

impl YalaModel {
    /// Trains Yala's full (traffic-aware) model for `kind`.
    pub fn train(sim: &mut Simulator, kind: NfKind, cfg: &TrainConfig) -> Self {
        // 1. Traffic-aware memory model via adaptive profiling (§5).
        let run = adaptive_profile(sim, kind, cfg.ranges, &cfg.adaptive);
        let memory = MemoryModel::fit(&run.dataset, &cfg.gbr, cfg.seed);
        Self::finish(sim, kind, memory, run.kept, run.measurements, cfg)
    }

    /// Trains one model per NF kind on a single NIC model — the
    /// homogeneous convenience wrapper around the per-model
    /// [`crate::bank::ModelBank`], which is the actual training path
    /// (kind `i` trains on a private simulator seeded
    /// `scenario_seed(cfg.seed, i)`, bit-identical across engine thread
    /// counts). Heterogeneous deployments call
    /// [`crate::bank::ModelBank::train_yala`] with the full portfolio
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics if a kind is outside `spec`'s profiling matrix
    /// ([`NfKind::profiled_on`]), e.g. a regex NF on a regex-less NIC.
    pub fn train_all(
        spec: &yala_sim::NicSpec,
        noise_sigma: f64,
        kinds: &[NfKind],
        cfg: &TrainConfig,
        engine: &crate::engine::Engine,
    ) -> Vec<(NfKind, YalaModel)> {
        let bank = crate::bank::ModelBank::train_yala(
            std::slice::from_ref(spec),
            noise_sigma,
            kinds,
            cfg,
            engine,
        );
        let model = spec.model();
        kinds
            .iter()
            .map(|&k| (k, bank.expect(model, k).clone()))
            .collect()
    }

    /// Trains the fixed-traffic variant (memory model with 7 features at
    /// one profile) — used by the §7.3 multi-resource-only experiments.
    pub fn train_fixed(
        sim: &mut Simulator,
        kind: NfKind,
        profile: TrafficProfile,
        cfg: &TrainConfig,
    ) -> Self {
        let target = kind.workload(profile, kind as usize as u64);
        let ds = memory_dataset_fixed(sim, &target, &crate::profiler::default_mem_grid());
        let memory = MemoryModel::fit(&ds, &cfg.gbr, cfg.seed);
        Self::finish(sim, kind, memory, [false; 3], ds.len(), cfg)
    }

    fn finish(
        sim: &mut Simulator,
        kind: NfKind,
        memory: MemoryModel,
        kept: [bool; 3],
        mem_cost: usize,
        cfg: &TrainConfig,
    ) -> Self {
        // 2. White-box accelerator models (§4.1.1) at the training defaults.
        let mut accels = Vec::new();
        let mut cost = mem_cost;
        for kind_a in [ResourceKind::Regex, ResourceKind::Compression] {
            if sim.spec().accel(kind_a).is_none() {
                continue;
            }
            let mut workload_at = |mtbr: f64| {
                let p = TrafficProfile {
                    mtbr,
                    ..TrafficProfile::default()
                };
                kind.workload(p, kind as usize as u64)
            };
            if let Some(m) = infer_service_model(sim, kind_a, &mut workload_at, &cfg.infer) {
                cost += cfg.infer.mtbrs.len();
                accels.push(m);
            }
        }
        // 3. Execution-pattern detection (§4.2).
        let pattern = Self::detect(sim, kind, &accels, &mut cost);
        Self {
            name: kind.name().to_string(),
            pattern,
            memory,
            accels,
            cores: yala_nf::runtime::DEFAULT_CORES as f64,
            kept_attributes: kept,
            profiling_cost: cost,
        }
    }

    /// Pattern detection by co-running with benches and testing which
    /// composition law fits (§4.2).
    fn detect(
        sim: &mut Simulator,
        kind: NfKind,
        accels: &[AccelServiceModel],
        cost: &mut usize,
    ) -> ExecutionPattern {
        let Some(accel) = accels.first() else {
            // Single-resource NF: composition is vacuous.
            return ExecutionPattern::RunToCompletion;
        };
        let target = kind.workload(TrafficProfile::default(), kind as usize as u64);
        let mem = MemLevel {
            car: 1.5e8,
            wss: 8e6,
            cycles: 60.0,
        }
        .bench();
        let acc_bench = match accel.kind {
            ResourceKind::Regex => yala_nf::bench::regex_bench(1e12, 1446.0, 1_500.0),
            ResourceKind::Compression => yala_nf::bench::compression_bench(1e12, 1446.0),
            other => panic!("unexpected accelerator {other}"),
        };
        *cost += 4;
        let t_solo = sim.solo(&target).throughput_pps;
        let t_mem = sim.co_run(&[target.clone(), mem.clone()]).outcomes[0].throughput_pps;
        let t_acc = sim.co_run(&[target.clone(), acc_bench.clone()]).outcomes[0].throughput_pps;
        let t_both = sim.co_run(&[target, mem, acc_bench]).outcomes[0].throughput_pps;
        detect_pattern(t_solo, t_mem, t_acc, t_both)
    }

    /// Per-resource throughput predictions `T_k` (memory first, then each
    /// accelerator), clamped at `solo_tput`. For a pipeline NF the
    /// accelerator entry is the Eq. 1 stage cap; for run-to-completion it
    /// is the sojourn-delta end-to-end value (the paper's Eq. 3 input).
    pub fn per_resource(
        &self,
        solo_tput: f64,
        traffic: &TrafficProfile,
        contenders: &[Contender],
    ) -> Vec<(ResourceKind, f64)> {
        assert!(solo_tput > 0.0, "solo throughput must be positive");
        let traffic_arg = self.memory.is_traffic_aware().then_some(traffic);
        let mem = self
            .memory
            .predict(&aggregate_counters(contenders), traffic_arg)
            .min(solo_tput);
        let mut out = vec![(ResourceKind::CpuMem, mem)];
        for am in &self.accels {
            let t_k = match self.pattern {
                ExecutionPattern::Pipeline => {
                    am.contended_cap(traffic.mtbr, contenders).min(solo_tput)
                }
                ExecutionPattern::RunToCompletion => am
                    .rtc_end_to_end(solo_tput, traffic.mtbr, self.cores, contenders)
                    .min(solo_tput),
            };
            out.push((am.kind, t_k));
        }
        out
    }

    /// Predicts the target's end-to-end throughput when co-located with
    /// `contenders` under `traffic`, given its measured solo throughput at
    /// that profile.
    pub fn predict(
        &self,
        solo_tput: f64,
        traffic: &TrafficProfile,
        contenders: &[Contender],
    ) -> f64 {
        self.predict_with(
            Composition::ExecutionPattern,
            solo_tput,
            traffic,
            contenders,
        )
    }

    /// Prediction with an explicit composition variant (for ablations).
    pub fn predict_with(
        &self,
        composition: Composition,
        solo_tput: f64,
        traffic: &TrafficProfile,
        contenders: &[Contender],
    ) -> f64 {
        let per: Vec<f64> = self
            .per_resource(solo_tput, traffic, contenders)
            .iter()
            .map(|(_, t)| *t)
            .collect();
        match composition {
            Composition::ExecutionPattern => compose(self.pattern, solo_tput, &per),
            Composition::Sum => compose_sum(solo_tput, &per),
            Composition::Min => compose_min(solo_tput, &per),
        }
    }

    /// This NF's contender description when *it* is the competitor: its
    /// solo counters plus its fitted accelerator pressure at its traffic's
    /// MTBR.
    pub fn as_contender(&self, counters: yala_sim::CounterSample, mtbr: f64) -> Contender {
        let mut c = Contender::memory_only(self.name.clone(), counters);
        for am in &self.accels {
            c = c.with_accel(crate::contender::AccelContention {
                kind: am.kind,
                queues: am.queues,
                service_s: am.service_time(mtbr),
            });
        }
        c
    }

    /// How many online refit passes the memory curve has absorbed (0 =
    /// the offline train-once state).
    pub fn refits(&self) -> u32 {
        self.memory.refits()
    }

    /// The end-to-end throughput an observation implies for the *memory
    /// resource alone*, by inverting the composition law around the fixed
    /// white-box accelerator predictions. Returns `None` when the sample
    /// cannot be attributed to the memory curve:
    ///
    /// * a pipeline NF whose accelerator stage was the binding one — the
    ///   observation only lower-bounds the memory throughput;
    /// * a degenerate sample (non-positive solo or measured throughput).
    ///
    /// For a memory-only NF the measured outcome *is* the memory
    /// component. Values are clamped into `[measured, solo]` — the
    /// composition laws guarantee the memory component is no worse than
    /// the end-to-end outcome and never better than solo.
    fn implied_memory_tput(&self, o: &Observation) -> Option<f64> {
        if o.solo_tput <= 0.0 || o.measured_tput <= 0.0 || !o.measured_tput.is_finite() {
            return None;
        }
        let solo = o.solo_tput;
        // Measurement noise can push an audited outcome above solo.
        let measured = o.measured_tput.min(solo);
        // Per-accelerator predictions under the observed pressure, from
        // the fixed white-box models (one synthetic contender carrying
        // the observation's total pressure Σ n_j·t_j).
        let caps: Vec<f64> = self
            .accels
            .iter()
            .map(|am| {
                let synthetic = Contender::memory_only("audit", CounterSample::default())
                    .with_accel(AccelContention {
                        kind: am.kind,
                        queues: 1.0,
                        service_s: o.pressure_on(am.kind),
                    });
                let co = std::slice::from_ref(&synthetic);
                let t = match self.pattern {
                    ExecutionPattern::Pipeline => am.contended_cap(o.traffic.mtbr, co),
                    ExecutionPattern::RunToCompletion => {
                        am.rtc_end_to_end(solo, o.traffic.mtbr, self.cores, co)
                    }
                };
                t.min(solo)
            })
            .collect();
        if caps.is_empty() {
            return Some(measured);
        }
        match self.pattern {
            ExecutionPattern::Pipeline => {
                // T = min(T_mem, T_accel...): memory is observable only
                // when it was the binding stage.
                let accel_floor = caps.iter().fold(f64::INFINITY, |a, &b| a.min(b));
                (measured < accel_floor * (1.0 - 1e-9)).then_some(measured)
            }
            ExecutionPattern::RunToCompletion => {
                // Invert Eq. 3: 1/T = 1/T_mem + Σ_a 1/T_a − (r−1)/T_solo.
                let inv_mem = 1.0 / measured
                    - caps.iter().map(|&t| 1.0 / t.max(1e-12)).sum::<f64>()
                    + caps.len() as f64 / solo;
                if !inv_mem.is_finite() {
                    return None;
                }
                // inv_mem ≤ 1/solo means the accelerators over-explain
                // the drop: the memory component is at least solo-clean.
                Some((1.0 / inv_mem.max(1e-300)).clamp(measured, solo))
            }
        }
    }
}

impl Refinable for YalaModel {
    /// Absorbs audited co-run outcomes into the black-box memory curve
    /// (one deterministic refit over the extended training set); the
    /// white-box accelerator models and the detected execution pattern
    /// are physics-derived and stay fixed. Observations that cannot be
    /// attributed to the memory resource are skipped; returns the number
    /// absorbed. Absorbing zero rows is a strict no-op.
    fn refine(&mut self, observations: &[&Observation]) -> usize {
        let traffic_aware = self.memory.is_traffic_aware();
        let mut rows = Dataset::new(if traffic_aware {
            N_COUNTER_FEATURES + N_TRAFFIC_FEATURES
        } else {
            N_COUNTER_FEATURES
        });
        for o in observations {
            let Some(t_mem) = self.implied_memory_tput(o) else {
                continue;
            };
            if traffic_aware {
                rows.push(&traffic_aware_features(&o.competitors, &o.traffic), t_mem);
            } else {
                rows.push(&o.competitors.as_features(), t_mem);
            }
        }
        self.memory.absorb_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::mem_bench_contender;
    use yala_ml::metrics;
    use yala_sim::NicSpec;

    fn sim() -> Simulator {
        Simulator::with_noise(NicSpec::bluefield2(), 0.005, 99)
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig::default()
    }

    #[test]
    fn trains_and_predicts_memory_only_nf() {
        let mut sim = sim();
        let model = YalaModel::train(&mut sim, NfKind::FlowStats, &quick_cfg());
        assert!(model.accels.is_empty());
        assert!(model.kept_attributes[0], "flow count kept");

        // Evaluate at an unseen profile and contention level.
        let traffic = TrafficProfile::new(40_000, 1024, 0.0);
        let target = NfKind::FlowStats.workload(traffic, 5);
        let solo = sim.solo(&target).throughput_pps;
        let level = MemLevel {
            car: 1.3e8,
            wss: 7e6,
            cycles: 600.0,
        };
        let truth = sim.co_run(&[target, level.bench()]).outcomes[0].throughput_pps;
        let contender = mem_bench_contender(&mut sim, level);
        let pred = model.predict(solo, &traffic, std::slice::from_ref(&contender));
        let err = metrics::ape(truth, pred);
        assert!(err < 12.0, "pred {pred} truth {truth} err {err}");
    }

    #[test]
    fn multi_resource_nf_gets_accel_model_and_pattern() {
        let mut sim = sim();
        let model = YalaModel::train(&mut sim, NfKind::FlowMonitor, &quick_cfg());
        assert_eq!(model.accels.len(), 1);
        assert_eq!(model.accels[0].kind, ResourceKind::Regex);
        assert!(model.kept_attributes[2], "MTBR kept for a regex NF");
        assert_eq!(
            model.pattern,
            ExecutionPattern::RunToCompletion,
            "FlowMonitor is run-to-completion"
        );
    }

    #[test]
    fn pipeline_nf_detected() {
        let mut sim = sim();
        let model = YalaModel::train(&mut sim, NfKind::PacketFilter, &quick_cfg());
        assert_eq!(model.pattern, ExecutionPattern::Pipeline);
    }

    #[test]
    fn prediction_improves_under_regex_contention_vs_memory_only_view() {
        // The headline claim (Fig. 2): modeling the accelerator matters.
        let mut sim = sim();
        let model = YalaModel::train(&mut sim, NfKind::FlowMonitor, &quick_cfg());
        let traffic = TrafficProfile::default();
        let target = NfKind::FlowMonitor.workload(traffic, 5);
        let solo = sim.solo(&target).throughput_pps;

        let regex_hog = yala_nf::bench::regex_bench(1e12, 1446.0, 2_000.0);
        let truth = sim.co_run(&[target, regex_hog]).outcomes[0].throughput_pps;
        let contender = crate::profiler::regex_bench_contender(&mut sim, 1e12, 1446.0, 2_000.0);
        let pred = model.predict(solo, &traffic, std::slice::from_ref(&contender));
        let err = metrics::ape(truth, pred);
        assert!(
            err < 15.0,
            "Yala must see regex contention: {err} ({pred} vs {truth})"
        );

        // A memory-only view would predict ~solo.
        let mem_only = model.per_resource(solo, &traffic, std::slice::from_ref(&contender))[0].1;
        assert!(
            metrics::ape(truth, mem_only) > 20.0,
            "memory-only view must miss"
        );
    }

    #[test]
    fn as_contender_exports_accel_pressure() {
        let mut sim = sim();
        let model = YalaModel::train(&mut sim, NfKind::Nids, &quick_cfg());
        let c = model.as_contender(Default::default(), 600.0);
        assert!(c.pressure_on(ResourceKind::Regex) > 0.0);
    }

    #[test]
    fn composition_variants_order_sensibly() {
        let mut sim = sim();
        let model = YalaModel::train(&mut sim, NfKind::FlowMonitor, &quick_cfg());
        let traffic = TrafficProfile::default();
        let solo = 1e6;
        let mem_level = MemLevel {
            car: 1.5e8,
            wss: 8e6,
            cycles: 60.0,
        };
        let contenders = vec![
            mem_bench_contender(&mut sim, mem_level),
            crate::profiler::regex_bench_contender(&mut sim, 1e12, 1446.0, 1_000.0),
        ];
        let sum = model.predict_with(Composition::Sum, solo, &traffic, &contenders);
        let min = model.predict_with(Composition::Min, solo, &traffic, &contenders);
        let rtc = model.predict_with(Composition::ExecutionPattern, solo, &traffic, &contenders);
        assert!(sum <= rtc + 1.0, "sum over-subtracts: {sum} vs {rtc}");
        assert!(
            rtc <= min + 1.0,
            "rtc compounds more than min: {rtc} vs {min}"
        );
    }
}
