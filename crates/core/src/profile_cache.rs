//! The process-wide profile cache: deterministic, concurrency-safe
//! memoization of profile measurements keyed by
//! `(NfKind, traffic key, seed)` — with the NIC model folded into each
//! entry's per-model solo list, this is the
//! `(NicModelId, NfKind, traffic, workload seed)` keying the fleet
//! needs. Profiling (packet replay through the real NF plus a solo
//! measurement per NIC model) costs milliseconds per traffic point; a
//! production fleet has massive reuse across tenants running the same
//! NF kinds under near-identical traffic, so repeated keys should pay
//! the measurement once and hit thereafter.
//!
//! # Determinism
//!
//! Two properties make a cache admissible in a bit-reproducible
//! pipeline:
//!
//! * **Hit/fresh parity** — a hit must return exactly the bytes a fresh
//!   measurement would have produced. That holds iff the measurement is
//!   a pure function of the key, which is why the key carries a `seed`:
//!   callers derive every random stream of the measurement (workload
//!   profiling *and* simulator noise) from it, never from ambient
//!   state. [`profile_seed`] is the canonical key-to-seed fold.
//! * **Thread-count-invariant statistics** — under a parallel engine,
//!   which thread first requests a key is scheduling-dependent, but
//!   *how many distinct keys exist* is not. The cache therefore counts
//!   a miss per created entry slot and a hit for every other lookup:
//!   misses = distinct keys, hits = lookups − misses, both identical
//!   across runs and thread counts. Losers of a publication race block
//!   on the winner's [`OnceLock`] instead of re-measuring, so the entry
//!   bytes are single-sourced too.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use yala_nf::NfKind;
use yala_sim::{CounterSample, NicModelId, WorkloadSpec};
use yala_traffic::{QuantizedTraffic, TrafficProfile};

/// The traffic component of a [`ProfileKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficKey {
    /// The exact traffic bits. Exact keys make the cache a pure
    /// pass-through when every measurement is unique (the byte-stable
    /// legacy path) while still deduplicating true repeats — e.g. the
    /// same trace profiled again for another policy sweep.
    Exact {
        /// Flow count.
        flows: u32,
        /// Packet size.
        size: u32,
        /// MTBR as raw bits (profiles with the same MTBR value share
        /// the same bits; no NaN traffic exists).
        mtbr_bits: u64,
    },
    /// A quantized bucket ([`yala_traffic::TrafficQuantizer`]): every
    /// profile in the bucket shares the key, so sub-threshold drift and
    /// near-identical tenants hit.
    Bucketed(QuantizedTraffic),
}

impl TrafficKey {
    /// The exact-bits key of `profile`.
    pub fn exact(profile: &TrafficProfile) -> Self {
        TrafficKey::Exact {
            flows: profile.flow_count,
            size: profile.packet_size,
            mtbr_bits: profile.mtbr.to_bits(),
        }
    }
}

/// A profile-cache key. The measurement behind a key must be a pure
/// function of it: `kind` and the traffic determine *what* is measured,
/// `seed` determines every random stream used while measuring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProfileKey {
    /// Which NF.
    pub kind: NfKind,
    /// At what traffic.
    pub traffic: TrafficKey,
    /// The seed of every random stream in the measurement (workload
    /// profiling and simulator noise).
    pub seed: u64,
}

/// One NIC model's solo measurement inside a [`ProfileEntry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoloProfile {
    /// Solo throughput on this model (the SLA reference).
    pub solo_tput: f64,
    /// Solo counter vector on this model (contentiousness).
    pub counters: CounterSample,
}

/// A cached measurement: the profiled workload (hardware-independent
/// packet replay) plus one solo baseline per NIC model the NF is
/// feasible on, in portfolio order.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// The traffic actually measured (for bucketed keys, the bucket
    /// representative).
    pub traffic: TrafficProfile,
    /// The profiled workload; its name embeds the key seed, and callers
    /// rebrand per instance.
    pub workload: WorkloadSpec,
    /// Per-model solo baselines, in portfolio order.
    pub solos: Vec<(NicModelId, SoloProfile)>,
}

/// A snapshot of a cache's counters. All fields are deterministic in
/// the *set* of lookups performed, independent of thread interleaving
/// (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups that found (or waited for) an existing entry.
    pub hits: u64,
    /// Lookups that created the entry — the measurements actually paid
    /// for.
    pub misses: u64,
    /// Entries resident (== inserts, entries are never evicted).
    pub entries: u64,
}

type Slot = Arc<OnceLock<Arc<ProfileEntry>>>;

/// The cache. Cheap to construct; share one per scope you want
/// accounted together (a bench run, a fleet build), or use
/// [`ProfileCache::global`] for true process-wide sharing.
#[derive(Debug, Default)]
pub struct ProfileCache {
    map: Mutex<HashMap<ProfileKey, Slot>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProfileCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide shared cache.
    pub fn global() -> &'static ProfileCache {
        static GLOBAL: OnceLock<ProfileCache> = OnceLock::new();
        GLOBAL.get_or_init(ProfileCache::new)
    }

    /// Looks `key` up, running `measure` only if this is the first
    /// lookup of the key (concurrent requesters of the same key block
    /// until the winner publishes). The returned entry is shared — a
    /// hit is the same `Arc` (hence bitwise the same bytes) the miss
    /// produced.
    pub fn get_or_measure(
        &self,
        key: &ProfileKey,
        measure: impl FnOnce() -> ProfileEntry,
    ) -> Arc<ProfileEntry> {
        let (slot, created) = {
            let mut map = self.map.lock().expect("profile cache poisoned");
            match map.entry(*key) {
                Entry::Occupied(e) => (e.get().clone(), false),
                Entry::Vacant(v) => (v.insert(Slot::default()).clone(), true),
            }
        };
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if created {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        slot.get_or_init(|| Arc::new(measure())).clone()
    }

    /// The entry for `key`, if already measured and published.
    pub fn get(&self, key: &ProfileKey) -> Option<Arc<ProfileEntry>> {
        let slot = self
            .map
            .lock()
            .expect("profile cache poisoned")
            .get(key)
            .cloned()?;
        slot.get().cloned()
    }

    /// Entries resident.
    pub fn len(&self) -> usize {
        self.map.lock().expect("profile cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the counters. (Taken after quiescence —
    /// e.g. after an `Engine::run` barrier — the totals are exact and
    /// thread-count-invariant.)
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

/// One SplitMix64 scramble step.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds a base seed and a profile key's identity into the measurement
/// seed — the canonical way to make a measurement a pure function of
/// its cache key. Distinct `(kind, traffic)` pairs get decorrelated
/// streams; the same pair always gets the same stream, which is exactly
/// what lets a cache hit reproduce the fresh measurement bit for bit.
pub fn profile_seed(base: u64, kind: NfKind, traffic: &TrafficKey) -> u64 {
    let mut z = splitmix(base ^ 0xCAC8_E5EE_D15C_0FEE);
    z = splitmix(z ^ kind as u64);
    match traffic {
        TrafficKey::Exact {
            flows,
            size,
            mtbr_bits,
        } => {
            z = splitmix(z ^ 1);
            z = splitmix(z ^ *flows as u64);
            z = splitmix(z ^ *size as u64);
            z = splitmix(z ^ *mtbr_bits);
        }
        TrafficKey::Bucketed(q) => {
            z = splitmix(z ^ 2);
            z = splitmix(z ^ q.flows as u64);
            z = splitmix(z ^ q.size as u64);
            z = splitmix(z ^ q.mtbr as u64);
            z = splitmix(z ^ q.scale as u64);
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use yala_sim::{ExecutionPattern, NicSpec, StageDemand};

    fn entry(tag: f64) -> ProfileEntry {
        ProfileEntry {
            traffic: TrafficProfile::default(),
            workload: WorkloadSpec::new(
                "w",
                2,
                ExecutionPattern::RunToCompletion,
                vec![StageDemand::CpuMem {
                    cycles_per_pkt: 1_000.0,
                    cache_refs_per_pkt: 10.0,
                    write_frac: 0.3,
                    wss_bytes: 1e5,
                }],
            ),
            solos: vec![(
                NicSpec::bluefield2().model(),
                SoloProfile {
                    solo_tput: tag,
                    counters: CounterSample::default(),
                },
            )],
        }
    }

    fn key(seed: u64) -> ProfileKey {
        ProfileKey {
            kind: NfKind::FlowStats,
            traffic: TrafficKey::exact(&TrafficProfile::default()),
            seed,
        }
    }

    #[test]
    fn first_lookup_measures_later_lookups_hit() {
        let cache = ProfileCache::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..5 {
            let e = cache.get_or_measure(&key(1), || {
                calls.fetch_add(1, Ordering::SeqCst);
                entry(42.0)
            });
            assert_eq!(e.solos[0].1.solo_tput, 42.0);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "measured exactly once");
        let s = cache.stats();
        assert_eq!((s.lookups, s.hits, s.misses, s.entries), (5, 4, 1, 1));
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
    }

    #[test]
    fn distinct_keys_measure_independently() {
        let cache = ProfileCache::new();
        let a = cache.get_or_measure(&key(1), || entry(1.0));
        let b = cache.get_or_measure(&key(2), || entry(2.0));
        assert_ne!(a.solos[0].1.solo_tput, b.solos[0].1.solo_tput);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn hits_return_the_shared_entry() {
        let cache = ProfileCache::new();
        let a = cache.get_or_measure(&key(1), || entry(7.0));
        let b = cache.get_or_measure(&key(1), || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b), "a hit is the winner's bytes");
    }

    #[test]
    fn concurrent_requesters_of_one_key_measure_once() {
        let cache = ProfileCache::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_measure(&key(9), || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window: losers must block, not
                        // re-measure.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        entry(9.0)
                    })
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!((s.lookups, s.misses, s.hits), (8, 1, 7));
    }

    #[test]
    fn miss_count_is_thread_count_invariant() {
        // Hammer K keys from N threads in scrambled orders: misses must
        // equal K regardless of interleaving.
        let cache = ProfileCache::new();
        let cache = &cache;
        std::thread::scope(|scope| {
            for t in 0..6u64 {
                scope.spawn(move || {
                    for i in 0..40 {
                        let k = (i * 7 + t * 13) % 10;
                        cache.get_or_measure(&key(k), || entry(k as f64));
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.misses, 10);
        assert_eq!(s.entries, 10);
        assert_eq!(s.lookups, 6 * 40);
        assert_eq!(s.hits, s.lookups - s.misses);
    }

    #[test]
    fn exact_and_bucketed_keys_never_collide() {
        let p = TrafficProfile::default();
        let q = yala_traffic::TrafficQuantizer::new(0.10);
        let a = ProfileKey {
            kind: NfKind::Acl,
            traffic: TrafficKey::exact(&p),
            seed: 3,
        };
        let b = ProfileKey {
            kind: NfKind::Acl,
            traffic: TrafficKey::Bucketed(q.key(&p)),
            seed: 3,
        };
        assert_ne!(a, b);
        assert_ne!(
            profile_seed(7, a.kind, &a.traffic),
            profile_seed(7, b.kind, &b.traffic)
        );
    }

    #[test]
    fn profile_seed_is_pure_and_decorrelated() {
        let t = TrafficKey::exact(&TrafficProfile::default());
        assert_eq!(
            profile_seed(5, NfKind::Nat, &t),
            profile_seed(5, NfKind::Nat, &t)
        );
        assert_ne!(
            profile_seed(5, NfKind::Nat, &t),
            profile_seed(6, NfKind::Nat, &t)
        );
        assert_ne!(
            profile_seed(5, NfKind::Nat, &t),
            profile_seed(5, NfKind::Acl, &t)
        );
        let u = TrafficKey::exact(&TrafficProfile::new(20_000, 512, 1.0));
        assert_ne!(
            profile_seed(5, NfKind::Nat, &t),
            profile_seed(5, NfKind::Nat, &u)
        );
    }

    #[test]
    fn global_cache_is_shared() {
        let a = ProfileCache::global();
        let b = ProfileCache::global();
        assert!(std::ptr::eq(a, b));
    }
}
