//! Adaptive profiling (§5.2, Algorithm 1): prune traffic attributes the NF
//! is insensitive to, then binary-search the remaining attribute space,
//! spending the profiling quota where solo throughput changes fastest.
//! Random and full profiling are provided for the Table 8 / Fig. 8
//! comparisons.
//!
//! One NF's adaptive run is inherently sequential (each probe depends on
//! the quota spent so far), but runs for *different NFs* are independent:
//! [`adaptive_profile_all`] dispatches them across the
//! [`Engine`] worker pool with deterministic
//! per-scenario simulators, so profiling a fleet scales with core count
//! while staying bit-identical to the sequential sweep.

use crate::engine::{scenario_seed, simulator_for, Engine};
use crate::profiler::{measure_traffic_sample, MemLevel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yala_ml::Dataset;
use yala_nf::NfKind;
use yala_sim::{NicSpec, Simulator};
use yala_traffic::TrafficProfile;

/// Inclusive ranges of the three traffic attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficRanges {
    /// Flow-count range.
    pub flows: (u32, u32),
    /// Packet-size range (bytes).
    pub pkt: (u32, u32),
    /// MTBR range (matches/MB).
    pub mtbr: (f64, f64),
}

impl Default for TrafficRanges {
    fn default() -> Self {
        Self {
            flows: (1_000, 500_000),
            pkt: (64, 1500),
            mtbr: (0.0, 1_200.0),
        }
    }
}

impl TrafficRanges {
    fn low(&self) -> [f64; 3] {
        [self.flows.0 as f64, self.pkt.0 as f64, self.mtbr.0]
    }

    fn high(&self) -> [f64; 3] {
        [self.flows.1 as f64, self.pkt.1 as f64, self.mtbr.1]
    }
}

fn profile_from_vec(v: [f64; 3]) -> TrafficProfile {
    TrafficProfile::new(v[0].round() as u32, v[1].round() as u32, v[2])
}

/// Hyper-parameters of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Total measurement quota `q` (solo probes + contended samples).
    pub quota: usize,
    /// Relative solo-throughput difference below which an attribute is
    /// pruned (`ε0`).
    pub eps0: f64,
    /// Relative difference that triggers sampling within a range (`ε1`).
    pub eps1: f64,
    /// Contended samples collected per selected region midpoint (`m`).
    pub m: usize,
    /// RNG seed for contention levels.
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            quota: 240,
            eps0: 0.03,
            eps1: 0.02,
            m: 6,
            seed: 17,
        }
    }
}

/// Result of a profiling strategy: a traffic-aware training set plus
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct ProfilingRun {
    /// The 10-feature training dataset.
    pub dataset: Dataset,
    /// Total simulator measurements spent (the paper's profiling cost).
    pub measurements: usize,
    /// Which attributes survived pruning (flows, pkt, mtbr).
    pub kept: [bool; 3],
}

/// Algorithm 1: adaptive profiling of `kind` over `ranges`.
pub fn adaptive_profile(
    sim: &mut Simulator,
    kind: NfKind,
    ranges: TrafficRanges,
    cfg: &AdaptiveConfig,
) -> ProfilingRun {
    let mut state = State {
        sim,
        kind,
        dataset: Dataset::new(10),
        measurements: 0,
        quota: cfg.quota,
        rng: StdRng::seed_from_u64(cfg.seed),
        m: cfg.m,
        eps1: cfg.eps1,
        spread_at: 0,
    };
    let default_vec = [
        TrafficProfile::default().flow_count as f64,
        1500.0,
        TrafficProfile::default().mtbr,
    ];
    let t_default = state.solo(default_vec);

    // Anchor the contention response at the default profile with a small
    // structured sweep (the §4.1.2 base data the traffic dimensions extend).
    for car in [4.0e7, 9.0e7, 1.5e8, 2.2e8, 2.9e8] {
        for wss in [2.0e6, 8.0e6, 20.0e6] {
            state.sample_at(
                default_vec,
                MemLevel {
                    car,
                    wss,
                    cycles: 600.0,
                },
            );
        }
    }

    // Phase 1 (lines 7-11): attribute pruning against ε0.
    let mut kept = [false; 3];
    let lo = ranges.low();
    let hi = ranges.high();
    for attr in 0..3 {
        let mut vmin = default_vec;
        let mut vmax = default_vec;
        vmin[attr] = lo[attr];
        vmax[attr] = hi[attr];
        let (t_min, t_max) = (state.solo(vmin), state.solo(vmax));
        kept[attr] = (t_max - t_min).abs() / t_default >= cfg.eps0;
    }

    // Phase 2 (range_profile): binary search over the kept-attribute box.
    let mut from = default_vec;
    let mut to = default_vec;
    for attr in 0..3 {
        if kept[attr] {
            from[attr] = lo[attr];
            to[attr] = hi[attr];
        }
    }
    if kept.iter().any(|&k| k) {
        state.range_profile(from, to, t_default, 0);
    } else {
        // Nothing traffic-sensitive: spend the quota at the default profile.
        while state.quota_left() {
            state.sample_contended(default_vec);
        }
    }
    ProfilingRun {
        dataset: state.dataset,
        measurements: state.measurements,
        kept,
    }
}

/// Adaptive profiling of many NFs, one independent simulator scenario per
/// NF, dispatched across `engine`'s worker pool. Scenario `i` runs
/// [`adaptive_profile`] for `kinds[i]` on a private simulator seeded
/// `scenario_seed(cfg.seed, i)` (noise-free when `noise_sigma` is 0), so
/// the output is a pure function of the inputs: the same `Vec` whether
/// `engine` is sequential or parallel.
pub fn adaptive_profile_all(
    spec: &NicSpec,
    noise_sigma: f64,
    kinds: &[NfKind],
    ranges: TrafficRanges,
    cfg: &AdaptiveConfig,
    engine: &Engine,
) -> Vec<ProfilingRun> {
    engine.run(kinds.len(), |i| {
        let mut sim = simulator_for(spec, noise_sigma, scenario_seed(cfg.seed, i));
        adaptive_profile(&mut sim, kinds[i], ranges, cfg)
    })
}

struct State<'a> {
    sim: &'a mut Simulator,
    kind: NfKind,
    dataset: Dataset,
    measurements: usize,
    quota: usize,
    rng: StdRng,
    m: usize,
    eps1: f64,
    spread_at: usize,
}

impl State<'_> {
    fn quota_left(&self) -> bool {
        self.measurements < self.quota
    }

    /// Solo measurement at a traffic point; recorded as a zero-contention
    /// training sample (and counted against the quota).
    fn solo(&mut self, v: [f64; 3]) -> f64 {
        self.measurements += 1;
        let (x, t) = measure_traffic_sample(
            self.sim,
            self.kind,
            profile_from_vec(v),
            MemLevel::idle(),
            self.kind as usize as u64,
        );
        self.dataset.push(&x, t);
        t
    }

    /// Contended measurement. Levels rotate through a structured spread
    /// (with jitter) so every sampled traffic point sees a mini
    /// contention-response curve — random levels leave the (traffic ×
    /// contention) interaction under-covered at small quotas.
    fn sample_contended(&mut self, v: [f64; 3]) {
        const SPREAD: [(f64, f64); 6] = [
            (4.0e7, 2.0e6),
            (9.0e7, 8.0e6),
            (1.5e8, 20.0e6),
            (2.2e8, 4.0e6),
            (2.9e8, 12.0e6),
            (1.2e8, 6.0e6),
        ];
        let (car, wss) = SPREAD[self.spread_at % SPREAD.len()];
        self.spread_at += 1;
        let level = MemLevel {
            car: car * self.rng.gen_range(0.85..1.15),
            wss: wss * self.rng.gen_range(0.85..1.15),
            cycles: [60.0, 600.0, 2_400.0][self.rng.gen_range(0..3)],
        };
        self.sample_at(v, level);
    }

    /// Contended measurement at an explicit level.
    fn sample_at(&mut self, v: [f64; 3], level: MemLevel) {
        self.measurements += 1;
        let (x, t) = measure_traffic_sample(
            self.sim,
            self.kind,
            profile_from_vec(v),
            level,
            self.kind as usize as u64,
        );
        self.dataset.push(&x, t);
    }

    /// Lines 14-26 of Algorithm 1, processed breadth-first: a depth-first
    /// descent would exhaust the quota inside the first sensitive subrange
    /// it meets, starving whole regions of the attribute space. Visiting
    /// ranges level by level spreads the quota across scales, refining
    /// everywhere the solo throughput still moves.
    fn range_profile(&mut self, from: [f64; 3], to: [f64; 3], t_ref: f64, _depth: usize) {
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((from, to, 0usize));
        while let Some((lo, hi, depth)) = queue.pop_front() {
            if !self.quota_left() || depth > 6 {
                break;
            }
            let t_min = self.solo(lo);
            let t_max = self.solo(hi);
            if (t_max - t_min).abs() / t_ref < self.eps1 {
                continue;
            }
            let mid = [
                0.5 * (lo[0] + hi[0]),
                0.5 * (lo[1] + hi[1]),
                0.5 * (lo[2] + hi[2]),
            ];
            for _ in 0..self.m {
                if !self.quota_left() {
                    return;
                }
                self.sample_contended(mid);
            }
            queue.push_back((mid, hi, depth + 1));
            queue.push_back((lo, mid, depth + 1));
        }
    }
}

/// Random profiling baseline: `quota` samples at uniformly random traffic
/// points and contention levels.
pub fn random_profile(
    sim: &mut Simulator,
    kind: NfKind,
    ranges: TrafficRanges,
    quota: usize,
    seed: u64,
) -> ProfilingRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dataset = Dataset::new(10);
    for _ in 0..quota {
        let v = [
            rng.gen_range(ranges.flows.0 as f64..=ranges.flows.1 as f64),
            rng.gen_range(ranges.pkt.0 as f64..=ranges.pkt.1 as f64),
            rng.gen_range(ranges.mtbr.0..=ranges.mtbr.1),
        ];
        // 1-in-8 samples are solo anchors, mirroring adaptive's solo probes.
        let level = if rng.gen_range(0..8) == 0 {
            MemLevel::idle()
        } else {
            MemLevel::random(&mut rng)
        };
        let (x, t) =
            measure_traffic_sample(sim, kind, profile_from_vec(v), level, kind as usize as u64);
        dataset.push(&x, t);
    }
    ProfilingRun {
        dataset,
        measurements: quota,
        kept: [true; 3],
    }
}

/// Full (dense-grid) profiling: the paper's reference point costing 3200×
/// the adaptive quota. Grid resolution is configurable so tests can afford
/// it; `levels_per_point` contention levels are drawn per traffic point.
pub fn full_profile(
    sim: &mut Simulator,
    kind: NfKind,
    ranges: TrafficRanges,
    steps: [usize; 3],
    levels_per_point: usize,
    seed: u64,
) -> ProfilingRun {
    assert!(
        steps.iter().all(|&s| s >= 2),
        "need at least 2 steps per attribute"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dataset = Dataset::new(10);
    let mut measurements = 0usize;
    let lo = ranges.low();
    let hi = ranges.high();
    let coord = |attr: usize, i: usize| -> f64 {
        lo[attr] + (hi[attr] - lo[attr]) * i as f64 / (steps[attr] - 1) as f64
    };
    for fi in 0..steps[0] {
        for pi in 0..steps[1] {
            for mi in 0..steps[2] {
                let v = [coord(0, fi), coord(1, pi), coord(2, mi)];
                for li in 0..levels_per_point {
                    let level = if li == 0 {
                        MemLevel::idle()
                    } else {
                        MemLevel::random(&mut rng)
                    };
                    let (x, t) = measure_traffic_sample(
                        sim,
                        kind,
                        profile_from_vec(v),
                        level,
                        kind as usize as u64,
                    );
                    dataset.push(&x, t);
                    measurements += 1;
                }
            }
        }
    }
    ProfilingRun {
        dataset,
        measurements,
        kept: [true; 3],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_sim::NicSpec;

    fn sim() -> Simulator {
        Simulator::new(NicSpec::bluefield2())
    }

    #[test]
    fn prunes_insensitive_attributes_for_flowstats() {
        // FlowStats is flow-count sensitive but packet-size/MTBR
        // insensitive (§5.2's own example).
        let mut sim = sim();
        let cfg = AdaptiveConfig {
            quota: 40,
            ..Default::default()
        };
        let run = adaptive_profile(&mut sim, NfKind::FlowStats, TrafficRanges::default(), &cfg);
        assert!(run.kept[0], "flow count must be kept");
        assert!(!run.kept[2], "MTBR must be pruned for a header-only NF");
        assert!(
            run.measurements <= cfg.quota + 8,
            "quota respected (±pruning probes)"
        );
        assert!(run.dataset.len() > 10);
    }

    #[test]
    fn keeps_mtbr_for_regex_nf() {
        let mut sim = sim();
        let cfg = AdaptiveConfig {
            quota: 40,
            ..Default::default()
        };
        let run = adaptive_profile(
            &mut sim,
            NfKind::FlowMonitor,
            TrafficRanges::default(),
            &cfg,
        );
        assert!(run.kept[2], "MTBR must be kept for a regex NF");
    }

    #[test]
    fn insensitive_nf_spends_quota_at_default() {
        let mut sim = sim();
        let cfg = AdaptiveConfig {
            quota: 25,
            ..Default::default()
        };
        let run = adaptive_profile(&mut sim, NfKind::Acl, TrafficRanges::default(), &cfg);
        assert_eq!(run.kept, [false, false, false]);
        assert!(run.dataset.len() >= 20);
    }

    #[test]
    fn adaptive_concentrates_samples_in_sensitive_flow_range() {
        // FlowStats's knee is at small flow counts (LLC saturation);
        // adaptive sampling should place more mass there than uniform.
        let mut sim = sim();
        let cfg = AdaptiveConfig {
            quota: 100,
            ..Default::default()
        };
        let run = adaptive_profile(&mut sim, NfKind::FlowStats, TrafficRanges::default(), &cfg);
        let flows: Vec<f64> = (0..run.dataset.len())
            .map(|i| run.dataset.feature(i, 7))
            .collect();
        let below_mid = flows.iter().filter(|&&f| f <= 260_000.0).count();
        assert!(
            below_mid as f64 > flows.len() as f64 * 0.6,
            "adaptive should favour the sensitive low-flow region: {below_mid}/{}",
            flows.len()
        );
    }

    #[test]
    fn random_profile_respects_quota() {
        let mut sim = sim();
        let run = random_profile(&mut sim, NfKind::FlowStats, TrafficRanges::default(), 30, 5);
        assert_eq!(run.measurements, 30);
        assert_eq!(run.dataset.len(), 30);
    }

    #[test]
    fn full_profile_grid_size() {
        let mut sim = sim();
        let run = full_profile(
            &mut sim,
            NfKind::Acl,
            TrafficRanges::default(),
            [2, 2, 2],
            2,
            1,
        );
        assert_eq!(run.measurements, 2 * 2 * 2 * 2);
    }
}
