//! Tenant QoS classes: who suffers when capacity shrinks.
//!
//! A multi-tenant SmartNIC fleet (OSMOSIS, arXiv:2309.03628) sells two
//! kinds of contract: **guaranteed** tenants paid for their SLA and must
//! keep it through NIC failures and maintenance drains; **best-effort**
//! tenants absorb the slack — they are the first to be drained off a
//! contended NIC, the first to be parked when a failure burst shrinks the
//! fleet, and the last to be re-admitted when capacity returns. The class
//! is a property of the *tenant* (it arrives with the NF and never
//! changes), not of the placement.

/// A tenant's service class, ordered by precedence: guaranteed tenants
/// outrank best-effort ones everywhere capacity is contested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum QosClass {
    /// Holds a hard SLA: never evicted or parked while a best-effort
    /// tenant could yield instead; re-placed first under evacuation.
    #[default]
    Guaranteed,
    /// Soft contract: sheds first under pressure, re-admits last (and
    /// with backoff) when the fleet recovers.
    BestEffort,
}

impl QosClass {
    /// Stable lowercase name, used in reports and JSON records.
    pub fn name(self) -> &'static str {
        match self {
            QosClass::Guaranteed => "guaranteed",
            QosClass::BestEffort => "best_effort",
        }
    }

    /// Whether this is the guaranteed class.
    pub fn is_guaranteed(self) -> bool {
        matches!(self, QosClass::Guaranteed)
    }
}

impl std::fmt::Display for QosClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guaranteed_outranks_best_effort() {
        assert!(QosClass::Guaranteed < QosClass::BestEffort);
        assert_eq!(QosClass::default(), QosClass::Guaranteed);
        assert!(QosClass::Guaranteed.is_guaranteed());
        assert!(!QosClass::BestEffort.is_guaranteed());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(QosClass::Guaranteed.name(), "guaranteed");
        assert_eq!(QosClass::BestEffort.to_string(), "best_effort");
    }
}
