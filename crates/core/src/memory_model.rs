//! Black-box memory-subsystem model (§4.1.2): gradient-boosting regression
//! over the competitors' aggregate Table 11 counters, optionally augmented
//! with the target's traffic-attribute vector (§5.1.2).

use serde::{Deserialize, Serialize};
use yala_ml::{Dataset, GbrParams, GradientBoostingRegressor};
use yala_sim::CounterSample;
use yala_traffic::TrafficProfile;

/// Number of counter features (Table 11).
pub const N_COUNTER_FEATURES: usize = 7;
/// Number of traffic-attribute features (flows, packet size, MTBR).
pub const N_TRAFFIC_FEATURES: usize = 3;

/// The trained memory model. It retains its training dataset and fit
/// hyper-parameters so audited in-production observations can be
/// *absorbed* later ([`Self::absorb_rows`]): refinement re-fits the GBR
/// on the extended dataset with the original parameters and seed, so a
/// refined model is a pure function of `(training data, absorbed rows)`
/// — bit-identical wherever and whenever the refit runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    gbr: GradientBoostingRegressor,
    traffic_aware: bool,
    dataset: Dataset,
    params: GbrParams,
    seed: u64,
    refits: u32,
}

impl MemoryModel {
    /// Fits the model from a profiling dataset. Feature width must be 7
    /// (fixed traffic) or 10 (traffic-aware).
    ///
    /// # Panics
    ///
    /// Panics on any other feature width or an empty dataset.
    pub fn fit(ds: &Dataset, params: &GbrParams, seed: u64) -> Self {
        let traffic_aware = match ds.n_features() {
            N_COUNTER_FEATURES => false,
            w if w == N_COUNTER_FEATURES + N_TRAFFIC_FEATURES => true,
            w => panic!("memory model expects 7 or 10 features, got {w}"),
        };
        Self {
            gbr: GradientBoostingRegressor::fit(ds, params, seed),
            traffic_aware,
            dataset: ds.clone(),
            params: *params,
            seed,
            refits: 0,
        }
    }

    /// Whether the model consumes traffic attributes.
    pub fn is_traffic_aware(&self) -> bool {
        self.traffic_aware
    }

    /// Absorbs observation rows into the training set and re-fits.
    /// Returns the number of rows absorbed; an empty `rows` is a strict
    /// no-op (no refit, version unchanged), so absorbing nothing leaves
    /// the model bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `rows`' feature width differs from the model's.
    pub fn absorb_rows(&mut self, rows: &Dataset) -> usize {
        if rows.is_empty() {
            return 0;
        }
        self.dataset.extend_from(rows);
        self.gbr = GradientBoostingRegressor::fit(&self.dataset, &self.params, self.seed);
        self.refits += 1;
        rows.len()
    }

    /// How many refit passes the model has absorbed (0 = the offline
    /// train-once state).
    pub fn refits(&self) -> u32 {
        self.refits
    }

    /// Training rows currently backing the fit (offline + absorbed).
    pub fn n_samples(&self) -> usize {
        self.dataset.len()
    }

    /// Predicts the target's throughput under memory contention described
    /// by the competitors' aggregate counters.
    ///
    /// # Panics
    ///
    /// Panics if the model is traffic-aware and `traffic` is `None`.
    pub fn predict(&self, competitors: &CounterSample, traffic: Option<&TrafficProfile>) -> f64 {
        let pred = if self.traffic_aware {
            let t = traffic.expect("traffic-aware model needs a traffic profile");
            let mut x = [0.0; N_COUNTER_FEATURES + N_TRAFFIC_FEATURES];
            x[..N_COUNTER_FEATURES].copy_from_slice(&competitors.as_features());
            x[N_COUNTER_FEATURES..].copy_from_slice(&t.as_vector());
            self.gbr.predict(&x)
        } else {
            self.gbr.predict(&competitors.as_features())
        };
        pred.max(0.0)
    }
}

/// Builds the feature row for one traffic-aware profiling sample.
pub fn traffic_aware_features(
    bench_counters: &CounterSample,
    traffic: &TrafficProfile,
) -> [f64; N_COUNTER_FEATURES + N_TRAFFIC_FEATURES] {
    let mut x = [0.0; N_COUNTER_FEATURES + N_TRAFFIC_FEATURES];
    x[..N_COUNTER_FEATURES].copy_from_slice(&bench_counters.as_features());
    x[N_COUNTER_FEATURES..].copy_from_slice(&traffic.as_vector());
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(car: f64, wss: f64) -> CounterSample {
        CounterSample {
            l2crd: car / 2.0,
            l2cwr: car / 2.0,
            wss,
            memrd: car * 0.05,
            memwr: car * 0.05,
            ipc: 0.5,
            irt: car * 2.0,
        }
    }

    #[test]
    fn fixed_traffic_model_learns_car_dependence() {
        let mut ds = Dataset::new(7);
        for i in 0..60 {
            let car = 1e7 + i as f64 * 5e6;
            let tput = 2e6 - car * 3e-3; // linear degradation
            ds.push(&counters(car, 4e6).as_features(), tput);
        }
        let model = MemoryModel::fit(&ds, &GbrParams::default(), 1);
        assert!(!model.is_traffic_aware());
        let lo = model.predict(&counters(2e7, 4e6), None);
        let hi = model.predict(&counters(2.5e8, 4e6), None);
        assert!(lo > hi, "more CAR must predict lower throughput");
    }

    #[test]
    fn traffic_aware_model_uses_flow_count() {
        let mut ds = Dataset::new(10);
        for flows in [4_000u32, 16_000, 64_000, 256_000] {
            for i in 0..20 {
                let car = 1e7 + i as f64 * 1e7;
                let t = TrafficProfile::new(flows, 1500, 600.0);
                // Throughput falls with both CAR and flow count.
                let tput = 2e6 / (1.0 + flows as f64 / 3e4) - car * 1e-3;
                ds.push(&traffic_aware_features(&counters(car, 4e6), &t), tput);
            }
        }
        let model = MemoryModel::fit(&ds, &GbrParams::default(), 2);
        assert!(model.is_traffic_aware());
        let few = model.predict(
            &counters(5e7, 4e6),
            Some(&TrafficProfile::new(4_000, 1500, 600.0)),
        );
        let many = model.predict(
            &counters(5e7, 4e6),
            Some(&TrafficProfile::new(256_000, 1500, 600.0)),
        );
        assert!(few > many * 1.5, "flow count must matter: {few} vs {many}");
    }

    #[test]
    #[should_panic(expected = "expects 7 or 10 features")]
    fn wrong_width_panics() {
        let mut ds = Dataset::new(4);
        ds.push(&[1.0, 2.0, 3.0, 4.0], 1.0);
        MemoryModel::fit(&ds, &GbrParams::default(), 0);
    }

    #[test]
    #[should_panic(expected = "needs a traffic profile")]
    fn traffic_aware_without_traffic_panics() {
        let mut ds = Dataset::new(10);
        ds.push(&[0.0; 10], 1.0);
        ds.push(&[1.0; 10], 2.0);
        let model = MemoryModel::fit(&ds, &GbrParams::default(), 0);
        model.predict(&CounterSample::default(), None);
    }

    #[test]
    fn absorb_rows_refits_toward_new_evidence() {
        // Offline data says throughput is flat at 2e6; production
        // observations at high CAR say it collapses. The refit must pull
        // the prediction toward the observed regime.
        let mut ds = Dataset::new(7);
        for i in 0..30 {
            ds.push(&counters(1e7 + i as f64 * 1e6, 4e6).as_features(), 2e6);
        }
        let mut model = MemoryModel::fit(&ds, &GbrParams::default(), 3);
        let before = model.predict(&counters(3e8, 4e6), None);
        let mut obs = Dataset::new(7);
        for i in 0..30 {
            obs.push(&counters(2.9e8 + i as f64 * 1e6, 4e6).as_features(), 4e5);
        }
        assert_eq!(model.absorb_rows(&obs), 30);
        assert_eq!(model.refits(), 1);
        assert_eq!(model.n_samples(), 60);
        let after = model.predict(&counters(3e8, 4e6), None);
        assert!(
            after < before * 0.5,
            "refit must track the observed collapse: {before} -> {after}"
        );
    }

    #[test]
    fn absorb_empty_is_a_bitwise_noop() {
        let mut ds = Dataset::new(7);
        ds.push(&[0.0; 7], 1.0);
        ds.push(&[1.0; 7], 2.0);
        let mut model = MemoryModel::fit(&ds, &GbrParams::default(), 0);
        let frozen = model.clone();
        assert_eq!(model.absorb_rows(&Dataset::new(7)), 0);
        assert_eq!(model, frozen, "empty absorb must not refit");
        assert_eq!(model.refits(), 0);
    }

    #[test]
    fn absorb_is_deterministic() {
        let mut ds = Dataset::new(7);
        for i in 0..20 {
            ds.push(&counters(1e7 * (i + 1) as f64, 4e6).as_features(), 1e6);
        }
        let mut obs = Dataset::new(7);
        obs.push(&counters(2e8, 8e6).as_features(), 3e5);
        let mut a = MemoryModel::fit(&ds, &GbrParams::default(), 5);
        let mut b = MemoryModel::fit(&ds, &GbrParams::default(), 5);
        a.absorb_rows(&obs);
        b.absorb_rows(&obs);
        assert_eq!(a, b, "same state + same rows = bit-identical refit");
    }

    #[test]
    fn predictions_are_non_negative() {
        let mut ds = Dataset::new(7);
        ds.push(&[0.0; 7], -5.0);
        ds.push(&[1.0; 7], -5.0);
        let model = MemoryModel::fit(&ds, &GbrParams::default(), 0);
        assert_eq!(model.predict(&CounterSample::default(), None), 0.0);
    }
}
