//! In-production observations and the online-refinement contract.
//!
//! The fleet's SLA audits measure ground-truth co-run outcomes anyway —
//! every audit epoch yields `(prediction context, measured throughput)`
//! pairs for free, exactly the non-intrusive telemetry DRST-style
//! continuous model maintenance feeds on. This module is the channel that
//! carries those pairs back into the trained predictors:
//!
//! * [`Observation`] — one audited data point: which NF on which NIC
//!   hardware model, its traffic at the time, the competitors' aggregate
//!   memory contentiousness and accelerator pressure, its solo baseline,
//!   and the measured outcome.
//! * [`ObservationBuffer`] — an append-only batch of observations,
//!   harvested in deterministic (NIC index, resident index) order so a
//!   refinement pass is a pure function of the scenario.
//! * [`Refinable`] — the incremental-update contract a model type
//!   implements to absorb a cell's observations. Refinement must be
//!   deterministic: the same model state plus the same observation slice
//!   yields a bit-identical refined model, whatever thread runs it.
//!
//! Refinement flows through [`crate::bank::ModelBank::refine`], which
//! fans the *affected* cells over the scenario engine in model-major
//! training order and never touches (or creates) cells the profiling
//! matrix excluded — an observation can sharpen a trained model, never
//! resurrect a capability-infeasible one.

use yala_nf::NfKind;
use yala_sim::{CounterSample, NicModelId, ResourceKind};
use yala_traffic::TrafficProfile;

/// One audited ground-truth data point for a placed NF.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Hardware model of the NIC the NF was audited on.
    pub model: NicModelId,
    /// Which NF.
    pub kind: NfKind,
    /// The NF's traffic profile at audit time.
    pub traffic: TrafficProfile,
    /// Aggregate solo counters of its co-residents (the memory model's
    /// feature view of the competition).
    pub competitors: CounterSample,
    /// Total co-resident round-time pressure per accelerator
    /// (`Σ_j n_j·t_j`, Eq. 1), for the resources where it is non-zero.
    pub accel_pressure: Vec<(ResourceKind, f64)>,
    /// The NF's solo throughput at `traffic` on `model` (the prediction
    /// anchor and SLA reference).
    pub solo_tput: f64,
    /// Measured end-to-end throughput in the audited co-run.
    pub measured_tput: f64,
}

impl Observation {
    /// Total competitor pressure on accelerator `kind`.
    pub fn pressure_on(&self, kind: ResourceKind) -> f64 {
        self.accel_pressure
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, p)| *p)
            .sum()
    }
}

/// An append-only batch of audit observations, the unit of online
/// refinement. Order is meaningful: refits consume observations in
/// append order, so a deterministically harvested buffer yields
/// bit-identical refined models.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObservationBuffer {
    samples: Vec<Observation>,
}

impl ObservationBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one observation.
    pub fn push(&mut self, obs: Observation) {
        self.samples.push(obs);
    }

    /// Number of buffered observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer holds no observations.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Drops all buffered observations (after an absorb pass).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// All observations, in append order.
    pub fn iter(&self) -> std::slice::Iter<'_, Observation> {
        self.samples.iter()
    }

    /// The observations for one `(NIC model, NF)` cell, in append order.
    pub fn for_cell(&self, model: NicModelId, kind: NfKind) -> Vec<&Observation> {
        self.samples
            .iter()
            .filter(|o| o.model == model && o.kind == kind)
            .collect()
    }

    /// Distinct `(model, kind)` cells present, in first-seen order.
    pub fn cells(&self) -> Vec<(NicModelId, NfKind)> {
        let mut out: Vec<(NicModelId, NfKind)> = Vec::new();
        for o in &self.samples {
            if !out.contains(&(o.model, o.kind)) {
                out.push((o.model, o.kind));
            }
        }
        out
    }
}

impl<'a> IntoIterator for &'a ObservationBuffer {
    type Item = &'a Observation;
    type IntoIter = std::slice::Iter<'a, Observation>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// The incremental-update contract: absorb one cell's observations into
/// the trained state. Returns the number of observations actually
/// absorbed (a model may skip samples it cannot attribute, e.g. a
/// pipeline NF whose memory curve was not the binding resource).
///
/// Implementations must be deterministic — same state, same slice,
/// bit-identical result — and must treat an empty slice as a strict
/// no-op (no refit, version unchanged).
pub trait Refinable {
    /// Absorbs `observations` (all for this model's own cell) and re-fits
    /// whatever internal curves they inform.
    fn refine(&mut self, observations: &[&Observation]) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use yala_sim::NicSpec;

    fn obs(model: NicModelId, kind: NfKind, measured: f64) -> Observation {
        Observation {
            model,
            kind,
            traffic: TrafficProfile::default(),
            competitors: CounterSample::default(),
            accel_pressure: vec![(ResourceKind::Regex, 2e-6)],
            solo_tput: 1e6,
            measured_tput: measured,
        }
    }

    #[test]
    fn buffer_groups_by_cell_in_append_order() {
        let bf2 = NicSpec::bluefield2().model();
        let pen = NicSpec::pensando().model();
        let mut buf = ObservationBuffer::new();
        assert!(buf.is_empty());
        buf.push(obs(bf2, NfKind::FlowStats, 1.0));
        buf.push(obs(pen, NfKind::FlowStats, 2.0));
        buf.push(obs(bf2, NfKind::Nids, 3.0));
        buf.push(obs(bf2, NfKind::FlowStats, 4.0));
        assert_eq!(buf.len(), 4);
        assert_eq!(
            buf.cells(),
            vec![
                (bf2, NfKind::FlowStats),
                (pen, NfKind::FlowStats),
                (bf2, NfKind::Nids)
            ]
        );
        let cell: Vec<f64> = buf
            .for_cell(bf2, NfKind::FlowStats)
            .iter()
            .map(|o| o.measured_tput)
            .collect();
        assert_eq!(cell, vec![1.0, 4.0], "append order preserved");
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn pressure_on_filters_by_resource() {
        let o = obs(NicSpec::bluefield2().model(), NfKind::Nids, 1.0);
        assert!((o.pressure_on(ResourceKind::Regex) - 2e-6).abs() < 1e-18);
        assert_eq!(o.pressure_on(ResourceKind::Compression), 0.0);
    }
}
