//! Per-NIC-model model banks: trained predictors keyed by
//! `(NicModelId, NfKind)`.
//!
//! A heterogeneous fleet mixes NIC hardware models (the paper's primary
//! BlueField-2 testbed plus the §8/Table 9 Pensando generalisation), and a
//! predictor trained against one model's memory subsystem and accelerator
//! service times is wrong on another's. The [`ModelBank`] is the registry
//! every layer above the simulator consults: *which* trained model applies
//! to *this* NF on *this* NIC model. Which `(model, NF)` cells exist is
//! governed by the per-model profiling matrix
//! ([`NfKind::profiled_on`]) — e.g. the Pensando-only Firewall is trained
//! there and nowhere else, and regex NFs are never trained on regex-less
//! hardware.
//!
//! Training seeds are assigned by the cell's position in the flattened
//! model-major matrix, so the first portfolio entry's cells get the exact
//! seeds the old homogeneous `train_all` path used — an all-BlueField-2
//! bank is bit-identical to the pre-heterogeneity models.

use crate::engine::{scenario_seed, simulator_for, Engine};
use crate::observe::{ObservationBuffer, Refinable};
use crate::predictor::{TrainConfig, YalaModel};
use yala_nf::NfKind;
use yala_sim::{NicModelId, NicSpec};

/// Trained models keyed by `(NicModelId, NfKind)`, one value per cell of
/// the per-model profiling matrix. Generic in the model type so the same
/// container serves Yala ([`YalaModel`]) and baseline (SLOMO) banks.
///
/// A bank is *versioned, refinable state*, not a train-once value: cells
/// can absorb in-production audit observations through [`Self::refine`]
/// while untouched cells stay bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelBank<M> {
    entries: Vec<(NicModelId, NfKind, M)>,
}

impl<M> Default for ModelBank<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> ModelBank<M> {
    /// An empty bank.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Inserts (or replaces) the model for one `(NIC model, NF)` cell.
    pub fn insert(&mut self, model: NicModelId, kind: NfKind, value: M) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|(m, k, _)| *m == model && *k == kind)
        {
            e.2 = value;
        } else {
            self.entries.push((model, kind, value));
        }
    }

    /// The trained model for `kind` on NICs of `model`, if that cell was
    /// trained.
    pub fn get(&self, model: NicModelId, kind: NfKind) -> Option<&M> {
        self.entries
            .iter()
            .find(|(m, k, _)| *m == model && *k == kind)
            .map(|(_, _, v)| v)
    }

    /// Like [`Self::get`] but panics with a diagnostic when the cell is
    /// missing — the placement layers only query cells the profiling
    /// matrix admitted, so a miss is a wiring bug, not a runtime state.
    pub fn expect(&self, model: NicModelId, kind: NfKind) -> &M {
        self.get(model, kind)
            .unwrap_or_else(|| panic!("no model trained for {kind} on NIC model {model}"))
    }

    /// Whether the `(model, kind)` cell exists.
    pub fn contains(&self, model: NicModelId, kind: NfKind) -> bool {
        self.get(model, kind).is_some()
    }

    /// All cells, in training (model-major) order.
    pub fn iter(&self) -> impl Iterator<Item = (NicModelId, NfKind, &M)> {
        self.entries.iter().map(|(m, k, v)| (*m, *k, v))
    }

    /// Distinct NIC models present, in first-seen (portfolio) order.
    pub fn models(&self) -> Vec<NicModelId> {
        let mut out: Vec<NicModelId> = Vec::new();
        for (m, _, _) in &self.entries {
            if !out.contains(m) {
                out.push(*m);
            }
        }
        out
    }

    /// The NF kinds trained for `model`, in training order.
    pub fn kinds_for(&self, model: NicModelId) -> Vec<NfKind> {
        self.entries
            .iter()
            .filter(|(m, _, _)| *m == model)
            .map(|(_, k, _)| *k)
            .collect()
    }

    /// Number of trained cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bank holds no cells.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Wraps a legacy homogeneous `(kind, model)` list as a single-model
    /// bank.
    pub fn from_single(model: NicModelId, entries: Vec<(NfKind, M)>) -> Self {
        Self {
            entries: entries.into_iter().map(|(k, v)| (model, k, v)).collect(),
        }
    }

    /// Builds a bank by training every admitted `(spec, kind)` cell of the
    /// profiling matrix, dispatched across `engine`'s workers. Cells are
    /// enumerated model-major (`specs[0]`'s kinds first, in `kinds`
    /// order), and `train` receives the cell's flattened index — the
    /// scenario-seed index — so results are bit-identical across thread
    /// counts, and the first spec's cells reproduce the homogeneous
    /// single-spec training exactly.
    ///
    /// # Panics
    ///
    /// Panics if two specs share a model name (the portfolio must list
    /// each hardware model once).
    pub fn train_matrix<F>(specs: &[NicSpec], kinds: &[NfKind], engine: &Engine, train: F) -> Self
    where
        M: Send,
        F: Fn(&NicSpec, NfKind, usize) -> M + Sync,
    {
        let cells = matrix_cells(specs, kinds);
        let trained = engine.run(cells.len(), |i| {
            let (s, kind) = cells[i];
            train(&specs[s], kind, i)
        });
        Self {
            entries: cells
                .iter()
                .zip(trained)
                .map(|(&(s, kind), v)| (specs[s].model(), kind, v))
                .collect(),
        }
    }
}

impl<M: Refinable + Clone + Send + Sync> ModelBank<M> {
    /// Absorbs a buffer of audit observations: each *affected* cell —
    /// visited in the bank's model-major training order — re-fits from
    /// its own observations (in buffer append order), dispatched across
    /// `engine`'s workers. Untouched cells are not cloned or re-fitted
    /// and stay bit-identical. Returns total observations absorbed.
    ///
    /// Observations for cells the bank does not hold are *ignored*:
    /// refinement can sharpen a trained model but never resurrect a cell
    /// the profiling matrix excluded (e.g. a regex NF on regex-less
    /// hardware). Cell refits are pure functions of `(cell state,
    /// observation slice)`, so the refined bank is bit-identical across
    /// engine thread counts.
    pub fn refine(&mut self, buffer: &ObservationBuffer, engine: &Engine) -> usize {
        if buffer.is_empty() {
            return 0;
        }
        let affected: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (m, k, _))| buffer.iter().any(|o| o.model == *m && o.kind == *k))
            .map(|(i, _)| i)
            .collect();
        if affected.is_empty() {
            return 0;
        }
        let refined: Vec<(M, usize)> = engine.run(affected.len(), |j| {
            let (m, k, v) = &self.entries[affected[j]];
            let mut model = v.clone();
            let absorbed = model.refine(&buffer.for_cell(*m, *k));
            (model, absorbed)
        });
        let mut total = 0;
        for (&i, (model, absorbed)) in affected.iter().zip(refined) {
            self.entries[i].2 = model;
            total += absorbed;
        }
        total
    }
}

/// The admitted `(spec index, kind)` cells of the per-model profiling
/// matrix for a portfolio, enumerated model-major (`specs[0]`'s kinds
/// first, in `kinds` order) — the single source of the cell ordering
/// (and the duplicate-model check) behind every bank trainer, so the
/// cell-index seeding contract cannot drift between the Yala and
/// baseline banks.
///
/// # Panics
///
/// Panics if two specs share a model name.
pub fn matrix_cells(specs: &[NicSpec], kinds: &[NfKind]) -> Vec<(usize, NfKind)> {
    let mut seen: Vec<NicModelId> = Vec::new();
    for spec in specs {
        assert!(
            !seen.contains(&spec.model()),
            "duplicate NIC model {} in training portfolio",
            spec.name
        );
        seen.push(spec.model());
    }
    specs
        .iter()
        .enumerate()
        .flat_map(|(s, spec)| {
            kinds
                .iter()
                .copied()
                .filter(|k| k.profiled_on(spec))
                .map(move |k| (s, k))
        })
        .collect()
}

impl ModelBank<YalaModel> {
    /// Trains the Yala bank for a NIC-model portfolio: one [`YalaModel`]
    /// per admitted `(model, kind)` cell, each on a private simulator
    /// seeded `scenario_seed(cfg.seed, cell_index)`. With a single-spec
    /// portfolio this reproduces the old homogeneous `train_all` results
    /// bit for bit.
    pub fn train_yala(
        specs: &[NicSpec],
        noise_sigma: f64,
        kinds: &[NfKind],
        cfg: &TrainConfig,
        engine: &Engine,
    ) -> Self {
        Self::train_matrix(specs, kinds, engine, |spec, kind, i| {
            let mut sim = simulator_for(spec, noise_sigma, scenario_seed(cfg.seed, i));
            YalaModel::train(&mut sim, kind, cfg)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_expect_and_iter() {
        let bf2 = NicSpec::bluefield2().model();
        let pen = NicSpec::pensando().model();
        let mut bank: ModelBank<u32> = ModelBank::new();
        assert!(bank.is_empty());
        bank.insert(bf2, NfKind::FlowStats, 1);
        bank.insert(pen, NfKind::FlowStats, 2);
        bank.insert(bf2, NfKind::Nids, 3);
        bank.insert(bf2, NfKind::FlowStats, 10); // replace
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.get(bf2, NfKind::FlowStats), Some(&10));
        assert_eq!(bank.get(pen, NfKind::Nids), None);
        assert_eq!(*bank.expect(pen, NfKind::FlowStats), 2);
        assert_eq!(bank.models(), vec![bf2, pen]);
        assert_eq!(bank.kinds_for(bf2), vec![NfKind::FlowStats, NfKind::Nids]);
        assert!(bank.contains(bf2, NfKind::Nids));
    }

    #[test]
    #[should_panic(expected = "no model trained")]
    fn expect_panics_on_missing_cell() {
        let bank: ModelBank<u32> = ModelBank::new();
        bank.expect(NicSpec::bluefield2().model(), NfKind::Acl);
    }

    #[test]
    fn matrix_respects_profiling_matrix_and_indexing() {
        let specs = [NicSpec::bluefield2(), NicSpec::pensando()];
        let kinds = [NfKind::FlowStats, NfKind::Nids, NfKind::Firewall];
        // Record which (spec, kind, index) triples training saw.
        let bank = ModelBank::train_matrix(&specs, &kinds, &Engine::sequential(), |s, k, i| {
            (s.name.clone(), k, i)
        });
        let cells: Vec<_> = bank.iter().map(|(_, _, v)| v.clone()).collect();
        // BF-2 trains FlowStats + Nids (no Firewall: Pensando-only NF);
        // Pensando trains FlowStats + Firewall (no Nids: no regex engine).
        assert_eq!(
            cells,
            vec![
                ("bluefield2".to_string(), NfKind::FlowStats, 0),
                ("bluefield2".to_string(), NfKind::Nids, 1),
                ("pensando".to_string(), NfKind::FlowStats, 2),
                ("pensando".to_string(), NfKind::Firewall, 3),
            ]
        );
        // First spec's cells use indices 0..: the homogeneous seed layout.
        let bf2 = specs[0].model();
        assert_eq!(bank.kinds_for(bf2), vec![NfKind::FlowStats, NfKind::Nids]);
    }

    #[test]
    #[should_panic(expected = "duplicate NIC model")]
    fn duplicate_models_rejected() {
        let specs = [NicSpec::bluefield2(), NicSpec::bluefield2()];
        ModelBank::train_matrix(&specs, &[NfKind::Acl], &Engine::sequential(), |_, _, i| i);
    }

    #[test]
    fn from_single_wraps_legacy_lists() {
        let bf2 = NicSpec::bluefield2().model();
        let bank = ModelBank::from_single(bf2, vec![(NfKind::Acl, 7u8), (NfKind::Nat, 8)]);
        assert_eq!(bank.get(bf2, NfKind::Nat), Some(&8));
        assert_eq!(bank.models(), vec![bf2]);
    }

    /// Toy refinable cell: counts absorbed observations and folds their
    /// measured values so refits are order-sensitive and comparable.
    #[derive(Debug, Clone, PartialEq)]
    struct Cell {
        absorbed: usize,
        folded: f64,
    }

    impl Refinable for Cell {
        fn refine(&mut self, observations: &[&crate::observe::Observation]) -> usize {
            for o in observations {
                self.absorbed += 1;
                self.folded = self.folded * 0.5 + o.measured_tput;
            }
            observations.len()
        }
    }

    fn observation(model: NicModelId, kind: NfKind, measured: f64) -> crate::observe::Observation {
        crate::observe::Observation {
            model,
            kind,
            traffic: yala_traffic::TrafficProfile::default(),
            competitors: yala_sim::CounterSample::default(),
            accel_pressure: Vec::new(),
            solo_tput: 1e6,
            measured_tput: measured,
        }
    }

    #[test]
    fn refine_touches_only_affected_cells_and_never_resurrects() {
        let bf2 = NicSpec::bluefield2().model();
        let pen = NicSpec::pensando().model();
        let zero = Cell {
            absorbed: 0,
            folded: 0.0,
        };
        let mut bank: ModelBank<Cell> = ModelBank::new();
        bank.insert(bf2, NfKind::FlowStats, zero.clone());
        bank.insert(bf2, NfKind::Nids, zero.clone());
        bank.insert(pen, NfKind::FlowStats, zero.clone());
        let mut buf = ObservationBuffer::new();
        buf.push(observation(bf2, NfKind::FlowStats, 1.0));
        buf.push(observation(bf2, NfKind::FlowStats, 2.0));
        // Nids is capability-infeasible on Pensando: the bank holds no
        // such cell, and refinement must not create one.
        buf.push(observation(pen, NfKind::Nids, 3.0));
        let absorbed = bank.refine(&buf, &Engine::sequential());
        assert_eq!(absorbed, 2, "only the trained cell's samples count");
        assert_eq!(bank.expect(bf2, NfKind::FlowStats).absorbed, 2);
        assert_eq!(bank.expect(bf2, NfKind::Nids), &zero, "untouched");
        assert_eq!(bank.expect(pen, NfKind::FlowStats), &zero, "untouched");
        assert!(
            !bank.contains(pen, NfKind::Nids),
            "refine must never resurrect an excluded cell"
        );
        assert_eq!(bank.len(), 3);
        // Empty buffer: strict no-op.
        let frozen = bank.clone();
        assert_eq!(bank.refine(&ObservationBuffer::new(), &Engine::auto()), 0);
        assert_eq!(bank, frozen);
    }

    #[test]
    fn refine_is_bit_identical_across_thread_counts() {
        let bf2 = NicSpec::bluefield2().model();
        let pen = NicSpec::pensando().model();
        let mut bank: ModelBank<Cell> = ModelBank::new();
        for (m, k) in [
            (bf2, NfKind::FlowStats),
            (bf2, NfKind::Acl),
            (pen, NfKind::FlowStats),
            (pen, NfKind::Nat),
        ] {
            bank.insert(
                m,
                k,
                Cell {
                    absorbed: 0,
                    folded: 0.1,
                },
            );
        }
        let mut buf = ObservationBuffer::new();
        for i in 0..24 {
            let model = if i % 2 == 0 { bf2 } else { pen };
            let kind = [NfKind::FlowStats, NfKind::Acl, NfKind::Nat][i % 3];
            buf.push(observation(model, kind, 0.3 + i as f64));
        }
        let mut seq = bank.clone();
        let mut par = bank;
        let a = seq.refine(&buf, &Engine::sequential());
        let b = par.refine(&buf, &Engine::with_threads(4));
        assert_eq!(a, b);
        assert_eq!(seq, par, "refined bank must not depend on thread count");
    }

    #[test]
    fn parallel_matrix_training_is_bit_identical() {
        let specs = [NicSpec::bluefield2(), NicSpec::pensando()];
        let kinds = [NfKind::FlowStats, NfKind::Acl, NfKind::Nat];
        let job = |s: &NicSpec, k: NfKind, i: usize| {
            scenario_seed(s.cores as u64, i).wrapping_add(k as u64)
        };
        let seq = ModelBank::train_matrix(&specs, &kinds, &Engine::sequential(), job);
        let par = ModelBank::train_matrix(&specs, &kinds, &Engine::with_threads(4), job);
        let a: Vec<_> = seq.iter().map(|(m, k, v)| (m, k, *v)).collect();
        let b: Vec<_> = par.iter().map(|(m, k, v)| (m, k, *v)).collect();
        assert_eq!(a, b);
    }
}
