//! The parallel scenario engine: dispatches independent simulator
//! scenarios across a std-thread worker pool (the strata-benchmarks
//! thread-sweep idiom) with deterministic per-scenario seeding, so
//! training N profiles scales with core count while remaining
//! **bit-identical** to the sequential path.
//!
//! The determinism contract: a scenario's result may depend only on its
//! index (and the caller's explicit inputs) — never on which worker ran it
//! or in what order. Every consumer therefore builds a *private*
//! [`Simulator`] per scenario, seeded by [`scenario_seed`], and results
//! are returned in scenario order. [`Engine::sequential`] runs the exact
//! same closures inline; the parity suite asserts
//! `Engine::with_threads(n).run(..) == Engine::sequential().run(..)` for
//! adaptive profiling, the SLOMO sweep, and placement preparation.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use yala_sim::{NicSpec, Simulator};

/// Derives the seed for scenario `index` from a base seed: a SplitMix64
/// step, so neighbouring scenarios get decorrelated streams while the
/// mapping stays a pure function of `(base, index)` — the property that
/// makes parallel and sequential execution bit-identical.
pub fn scenario_seed(base: u64, index: usize) -> u64 {
    let mut z = base.wrapping_add(
        (index as u64)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Base seed for the NIC model at `index` in a portfolio's spec list:
/// model 0 keeps `base` unchanged — so an all-first-model (homogeneous)
/// portfolio reproduces the single-spec seed streams bit for bit — while
/// later models get decorrelated streams via a salted SplitMix64 step.
pub fn model_seed_base(base: u64, index: usize) -> u64 {
    if index == 0 {
        base
    } else {
        scenario_seed(base ^ 0x5EED_4A1C_0DE7_713B, index)
    }
}

/// Builds the private simulator for one scenario: noise-free when
/// `noise_sigma` is zero, otherwise seeded measurement noise.
pub fn simulator_for(spec: &NicSpec, noise_sigma: f64, seed: u64) -> Simulator {
    if noise_sigma == 0.0 {
        Simulator::new(spec.clone())
    } else {
        Simulator::with_noise(spec.clone(), noise_sigma, seed)
    }
}

/// A worker pool for independent scenarios.
///
/// # Example
///
/// ```
/// use yala_core::engine::Engine;
/// let squares = Engine::with_threads(4).run(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// // Bit-identical to the sequential path by construction:
/// assert_eq!(squares, Engine::sequential().run(8, |i| i * i));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// The sequential engine: scenarios run inline, in index order.
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// An engine with exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "engine needs at least one thread");
        Self { threads }
    }

    /// An engine sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `scenarios` independent jobs and returns their results in
    /// scenario order. `job(i)` must be a pure function of `i` and the
    /// captured environment; workers pull indices from a shared counter,
    /// so *which* thread runs a scenario is unspecified — results are not.
    pub fn run<T, F>(&self, scenarios: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || scenarios <= 1 {
            return (0..scenarios).map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..scenarios).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(scenarios) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= scenarios {
                        break;
                    }
                    let result = job(i);
                    *slots[i].lock().expect("scenario slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("scenario slot poisoned")
                    .expect("every scenario index was claimed")
            })
            .collect()
    }

    /// [`Engine::run`] with chunked work-stealing: workers claim runs
    /// of `chunk` consecutive scenario indices per atomic increment and
    /// the per-chunk result vectors merge back in chunk order, so a
    /// 10k-scenario fan-out costs hundreds of claims and slot locks
    /// instead of 10k. The contract is unchanged — `job(i)` pure in
    /// `i`, results in scenario order — so for any chunk size the
    /// output equals `run`'s, and the parity tests assert it.
    pub fn run_chunked<T, F>(&self, scenarios: usize, chunk: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let chunk = chunk.max(1);
        if self.threads == 1 || scenarios <= chunk {
            return (0..scenarios).map(job).collect();
        }
        let chunks = scenarios.div_ceil(chunk);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Vec<T>>> = (0..chunks).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(chunks) {
                scope.spawn(|| loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        break;
                    }
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(scenarios);
                    let results: Vec<T> = (lo..hi).map(&job).collect();
                    *slots[c].lock().expect("chunk slot poisoned") = results;
                });
            }
        });
        let mut out = Vec::with_capacity(scenarios);
        for slot in slots {
            out.extend(slot.into_inner().expect("chunk slot poisoned"));
        }
        debug_assert_eq!(out.len(), scenarios, "every chunk was claimed");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_arrive_in_scenario_order() {
        let engine = Engine::with_threads(8);
        let out = engine.run(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let job = |i: usize| scenario_seed(42, i).wrapping_mul(i as u64);
        assert_eq!(
            Engine::with_threads(4).run(33, job),
            Engine::sequential().run(33, job)
        );
    }

    #[test]
    fn all_scenarios_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = Engine::with_threads(6).run(250, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 250);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 250);
    }

    #[test]
    fn zero_and_one_scenarios() {
        assert!(Engine::with_threads(4).run(0, |i| i).is_empty());
        assert_eq!(Engine::with_threads(4).run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn chunked_equals_plain_for_any_chunk_size() {
        let job = |i: usize| scenario_seed(9, i).wrapping_mul(i as u64);
        let want = Engine::sequential().run(103, job);
        for threads in [1, 3, 8] {
            for chunk in [1, 7, 16, 103, 500] {
                assert_eq!(
                    Engine::with_threads(threads).run_chunked(103, chunk, job),
                    want,
                    "threads={threads} chunk={chunk}"
                );
            }
        }
        // Chunk boundaries: exact multiple and a trailing partial chunk.
        assert_eq!(
            Engine::with_threads(4).run_chunked(32, 8, job),
            Engine::sequential().run(32, job)
        );
        assert!(Engine::with_threads(4).run_chunked(0, 8, |i| i).is_empty());
    }

    #[test]
    fn chunked_runs_every_scenario_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = Engine::with_threads(6).run_chunked(250, 9, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 250);
        assert_eq!(out, (0..250).collect::<Vec<_>>());
    }

    #[test]
    fn auto_has_at_least_one_thread() {
        assert!(Engine::auto().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        Engine::with_threads(0);
    }

    #[test]
    fn scenario_seeds_are_decorrelated_and_deterministic() {
        let seeds: HashSet<u64> = (0..1_000).map(|i| scenario_seed(7, i)).collect();
        assert_eq!(seeds.len(), 1_000, "seed collisions");
        assert_eq!(scenario_seed(7, 3), scenario_seed(7, 3));
        assert_ne!(scenario_seed(7, 3), scenario_seed(8, 3));
    }

    #[test]
    fn model_seed_base_keeps_model_zero_and_decorrelates_the_rest() {
        assert_eq!(model_seed_base(42, 0), 42, "homogeneous parity");
        let seeds: HashSet<u64> = (0..16).map(|m| model_seed_base(42, m)).collect();
        assert_eq!(seeds.len(), 16, "model streams must not collide");
        assert_eq!(model_seed_base(42, 3), model_seed_base(42, 3));
    }

    #[test]
    fn simulator_for_respects_noise_setting() {
        use yala_sim::{ExecutionPattern, StageDemand, WorkloadSpec};
        let spec = NicSpec::bluefield2();
        let w = WorkloadSpec::new(
            "t",
            2,
            ExecutionPattern::RunToCompletion,
            vec![StageDemand::CpuMem {
                cycles_per_pkt: 1_000.0,
                cache_refs_per_pkt: 10.0,
                write_frac: 0.3,
                wss_bytes: 1e5,
            }],
        );
        let mut a = simulator_for(&spec, 0.0, 1);
        let mut b = simulator_for(&spec, 0.0, 2);
        assert_eq!(a.solo(&w).throughput_pps, b.solo(&w).throughput_pps);
        let mut c = simulator_for(&spec, 0.01, 3);
        assert_ne!(a.solo(&w).throughput_pps, c.solo(&w).throughput_pps);
    }
}
