//! # yala-placement — contention-aware NF scheduling (§7.5.1)
//!
//! The operator places arriving NFs onto a cluster of SmartNICs, maximising
//! utilisation (minimum NICs) while holding each NF's SLA — a maximum
//! allowed throughput drop relative to running solo. The offline problem is
//! bin packing; following the paper we compare *online* strategies:
//!
//! * **Monopolization** — one NF per NIC (zero violations, maximal waste).
//! * **Greedy** — pack onto the NIC with the most available cores
//!   (contention-blind).
//! * **Contention-aware** — place only where the predictor (SLOMO or Yala)
//!   expects no SLA violation for anyone on the NIC.
//! * **Oracle** — contention-aware with ground-truth co-run simulation as
//!   the "predictor": the reference plan for resource-wastage accounting
//!   (the paper's exhaustive-search optimum is infeasible at 500 arrivals;
//!   an oracle-checked first fit measures the same thing — how many NICs a
//!   perfect predictor needs).
//!
//! ## Heterogeneous fleets
//!
//! Clusters mix NIC hardware models (BlueField-2 with an RXP regex engine;
//! Pensando without one), so everything a placement decision consumes is
//! keyed by [`NicModelId`]: a [`Placed`] NF carries one solo baseline
//! *per model* it was profiled on (solo throughput, counters, and hence
//! the SLA floor all differ per hardware), predictors answer for an
//! explicit model, and capability feasibility is a first-class gate — an
//! NF whose workload submits Regex requests is never profiled on (and is
//! rejected by every strategy for) a regex-less NIC.

use yala_core::engine::{model_seed_base, scenario_seed, simulator_for, Engine};
use yala_core::profile_cache::{ProfileEntry, SoloProfile};
use yala_core::{Contender, ModelBank, ObservationBuffer, QosClass, YalaModel};
use yala_nf::NfKind;
use yala_sim::{CounterSample, NicModelId, NicSpec, Simulator, WorkloadSpec};
use yala_slomo::SlomoModel;
use yala_traffic::TrafficProfile;

/// One arriving NF instance.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Which NF.
    pub kind: NfKind,
    /// Its traffic profile.
    pub traffic: TrafficProfile,
    /// Maximum tolerated throughput drop vs. solo (e.g. 0.1 = 10%).
    pub sla_drop: f64,
    /// The tenant's service class. Guaranteed tenants keep their SLA
    /// through faults; best-effort tenants shed first under pressure
    /// (defaults to [`QosClass::Guaranteed`], the single-tier fleet).
    pub qos: QosClass,
}

impl Arrival {
    /// A guaranteed-class arrival — the pre-QoS single-tier default.
    pub fn new(kind: NfKind, traffic: TrafficProfile, sla_drop: f64) -> Self {
        Self {
            kind,
            traffic,
            sla_drop,
            qos: QosClass::Guaranteed,
        }
    }
}

/// One NIC model's solo baseline for a placed NF: what the NF achieves
/// alone on that hardware, and how contentious it looks there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoloMeasure {
    /// Solo throughput on this model (SLA reference).
    pub solo_tput: f64,
    /// Solo counter vector on this model (contentiousness).
    pub counters: CounterSample,
}

/// An NF instance placed on (or prepared for) a NIC, with one solo
/// baseline per NIC model it is feasible on. The profiled workload (the
/// NF's per-packet demand) is hardware-independent; the solo throughput,
/// counters, and therefore the SLA floor are per-model.
#[derive(Debug, Clone)]
pub struct Placed {
    /// The arrival it satisfies.
    pub arrival: Arrival,
    /// Its profiled workload (packet replay through the real NF —
    /// identical on every model).
    pub workload: WorkloadSpec,
    /// Per-model solo baselines, in portfolio order. Models on which the
    /// NF is capability-infeasible (or outside the profiling matrix) are
    /// absent — absence *is* the placement-time feasibility gate.
    pub solos: Vec<(NicModelId, SoloMeasure)>,
}

impl Placed {
    /// The solo baseline on `model`, if the NF was profiled there.
    pub fn try_solo(&self, model: NicModelId) -> Option<&SoloMeasure> {
        self.solos.iter().find(|(m, _)| *m == model).map(|(_, s)| s)
    }

    /// The solo baseline on `model`.
    ///
    /// # Panics
    ///
    /// Panics if the NF was not profiled on `model` — strategies must
    /// check [`Self::supported_on`] before pricing a co-location.
    pub fn solo(&self, model: NicModelId) -> &SoloMeasure {
        self.try_solo(model).unwrap_or_else(|| {
            panic!(
                "{} has no solo baseline on NIC model {model}",
                self.workload.name
            )
        })
    }

    /// Whether this NF may be placed on NICs of `model` (it was profiled
    /// there, which the profiling matrix only allows when every
    /// accelerator it submits to exists on that hardware).
    pub fn supported_on(&self, model: NicModelId) -> bool {
        self.try_solo(model).is_some()
    }

    /// The lowest throughput this instance may run at on `model` without
    /// violating its SLA. The floor is per-model: the same drop tolerance
    /// anchors to that hardware's solo throughput.
    pub fn sla_floor(&self, model: NicModelId) -> f64 {
        self.solo(model).solo_tput * (1.0 - self.arrival.sla_drop)
    }

    /// The tenant's service class.
    pub fn qos(&self) -> QosClass {
        self.arrival.qos
    }
}

/// A predictor that judges whether a candidate co-location is SLA-safe.
pub trait PlacementPredictor {
    /// Predicted throughput of `residents[target]` when all `residents`
    /// share one NIC of hardware `model`.
    fn predict(&mut self, model: NicModelId, target: usize, residents: &[Placed]) -> f64;

    /// Re-evaluates an already-populated NIC of hardware `model` — e.g.
    /// after traffic drift has shifted some residents' profiles — and
    /// returns the indices of residents predicted to violate their SLA
    /// floor, in ascending order. A fleet orchestrator calls this each
    /// audit epoch to decide whether to migrate. The default issues one
    /// [`Self::predict`] per resident; implementations that can evaluate
    /// a whole NIC at once (the oracle's single co-run) may override it.
    fn reevaluate(&mut self, model: NicModelId, residents: &[Placed]) -> Vec<usize> {
        (0..residents.len())
            .filter(|&i| self.predict(model, i, residents) < residents[i].sla_floor(model))
            .collect()
    }

    /// Absorbs audited ground-truth observations into whatever trained
    /// state backs the predictor, re-fitting the affected model cells —
    /// the online-refinement hook a fleet orchestrator calls with the
    /// observations its SLA audits measured anyway. Returns observations
    /// absorbed. The default is a no-op: prediction-free strategies have
    /// nothing to refine, and the *oracle* deliberately stays the fixed
    /// ground-truth reference (refining it would be circular).
    fn absorb(&mut self, _buffer: &ObservationBuffer, _engine: &Engine) -> usize {
        0
    }
}

/// The placement strategies of Table 6.
pub enum Strategy<'a> {
    /// One NF per NIC.
    Monopolization,
    /// Most-available-cores first, prediction-free.
    Greedy,
    /// Place only if `predictor` foresees no SLA violation on the NIC.
    ContentionAware(&'a mut dyn PlacementPredictor),
}

/// Result of placing one arrival sequence.
#[derive(Debug, Clone)]
pub struct PlacementOutcome {
    /// NICs used, each holding its placed NFs.
    pub nics: Vec<Vec<Placed>>,
    /// Ground-truth SLA violations across all placed NFs.
    pub violations: usize,
    /// Total NFs placed.
    pub placed: usize,
    /// Arrivals rejected as capability-infeasible on the episode's NIC
    /// model (no solo baseline there — e.g. a regex NF on a regex-less
    /// NIC).
    pub rejected: usize,
}

impl PlacementOutcome {
    /// Fraction of placed NFs whose SLA is violated at ground truth.
    pub fn violation_rate(&self) -> f64 {
        if self.placed == 0 {
            0.0
        } else {
            self.violations as f64 / self.placed as f64
        }
    }

    /// Resource wastage vs. a reference plan: `(used - reference) /
    /// reference` (can be negative for plans that over-pack and violate
    /// SLAs, as SLOMO does in the paper).
    pub fn wastage_vs(&self, reference_nics: usize) -> f64 {
        assert!(
            reference_nics > 0,
            "reference plan must use at least one NIC"
        );
        (self.nics.len() as f64 - reference_nics as f64) / reference_nics as f64
    }
}

/// The one profile-measurement body, generic over how the per-model
/// simulators are held (a portfolio slice or a single borrowed sim).
fn measure_entry_iter<'a, I>(
    sims: I,
    kind: NfKind,
    traffic: TrafficProfile,
    seed: u64,
) -> ProfileEntry
where
    I: IntoIterator<Item = (NicModelId, &'a mut Simulator)>,
{
    let mut workload = kind.workload(traffic, seed);
    // Co-runs require unique names; instances of the same NF type must not
    // collide. Callers rebrand per instance where one entry is shared.
    workload.name = format!("{}-{seed}", workload.name);
    let solos = sims
        .into_iter()
        .map(|(model, sim)| {
            let outcome = sim.solo(&workload);
            (
                model,
                SoloProfile {
                    solo_tput: outcome.throughput_pps,
                    counters: outcome.counters,
                },
            )
        })
        .collect();
    ProfileEntry {
        traffic,
        workload,
        solos,
    }
}

/// THE single-sourced profile measurement: profiles `kind` at `traffic`
/// (packet replay through the real NF, seeded by `seed`) and
/// solo-measures the workload on every `(model, simulator)` pair, in
/// order. Every profiling entry point — direct preparation
/// ([`prepare_on`]), drift re-profiling ([`reprofile_on`]), the
/// single-model conveniences, and profile-cache misses
/// ([`yala_core::profile_cache::ProfileCache::get_or_measure`]) — runs
/// this one body, so a cache hit is provably the same bytes as the
/// fresh measurement it replaced.
pub fn measure_entry(
    sims: &mut [(NicModelId, Simulator)],
    kind: NfKind,
    traffic: TrafficProfile,
    seed: u64,
) -> ProfileEntry {
    measure_entry_iter(sims.iter_mut().map(|(m, s)| (*m, s)), kind, traffic, seed)
}

/// Materializes a [`Placed`] record from a (possibly cached)
/// [`ProfileEntry`]: the shared measurement bytes are copied verbatim;
/// only the instance identity (`name`, if given) and the arrival
/// metadata differ between instances sharing one entry.
pub fn placed_from_entry(entry: &ProfileEntry, arrival: Arrival, name: Option<&str>) -> Placed {
    let mut workload = entry.workload.clone();
    if let Some(n) = name {
        workload.name = n.to_string();
    }
    Placed {
        arrival,
        workload,
        solos: entry
            .solos
            .iter()
            .map(|(model, s)| {
                (
                    *model,
                    SoloMeasure {
                        solo_tput: s.solo_tput,
                        counters: s.counters,
                    },
                )
            })
            .collect(),
    }
}

/// Prepares a [`Placed`] record for an arrival against a set of per-model
/// simulators: the workload is profiled once (packet replay is
/// hardware-independent) and then solo-measured on each simulator in
/// order, producing one baseline per NIC model. Callers pass one
/// simulator per model the NF is admitted on
/// ([`NfKind::profiled_on`]); the resulting `solos` order follows `sims`.
pub fn prepare_on(sims: &mut [(NicModelId, Simulator)], arrival: Arrival, seed: u64) -> Placed {
    let entry = measure_entry(sims, arrival.kind, arrival.traffic, seed);
    placed_from_entry(&entry, arrival, None)
}

/// Single-model convenience: prepares a [`Placed`] record with one solo
/// baseline — the model of `sim`'s spec. Identical measurements to the
/// homogeneous pre-portfolio path.
pub fn prepare(sim: &mut Simulator, arrival: Arrival, seed: u64) -> Placed {
    let model = sim.spec().model();
    let entry = measure_entry_iter(
        std::iter::once((model, sim)),
        arrival.kind,
        arrival.traffic,
        seed,
    );
    placed_from_entry(&entry, arrival, None)
}

/// Prepares a whole arrival sequence against a NIC-model portfolio, one
/// independent scenario per arrival, dispatched across `engine`'s worker
/// pool. Arrival `i` is profiled (packet replay through the real NF) and
/// solo-measured per admitted model on private simulators seeded
/// `scenario_seed(model_seed_base(base_seed, m), i)` — model 0's stream
/// is exactly the old single-spec stream, so a one-spec portfolio
/// reproduces the homogeneous preparation bit for bit. The returned
/// sequence — and therefore every placement decision derived from it —
/// is bit-identical whatever the engine's thread count.
pub fn prepare_all(
    specs: &[NicSpec],
    noise_sigma: f64,
    arrivals: &[Arrival],
    base_seed: u64,
    engine: &Engine,
) -> Vec<Placed> {
    engine.run(arrivals.len(), |i| {
        let mut sims = sims_for(specs, arrivals[i].kind, noise_sigma, base_seed, i);
        prepare_on(
            &mut sims,
            arrivals[i].clone(),
            base_seed.wrapping_add(i as u64),
        )
    })
}

/// The per-model simulators for scenario `i` of an arrival of `kind`:
/// one per portfolio spec that admits the kind, seeded per
/// `(model position, scenario index)`.
pub fn sims_for(
    specs: &[NicSpec],
    kind: NfKind,
    noise_sigma: f64,
    base_seed: u64,
    scenario: usize,
) -> Vec<(NicModelId, Simulator)> {
    specs
        .iter()
        .enumerate()
        .filter(|(_, spec)| kind.profiled_on(spec))
        .map(|(m, spec)| {
            (
                spec.model(),
                simulator_for(
                    spec,
                    noise_sigma,
                    scenario_seed(model_seed_base(base_seed, m), scenario),
                ),
            )
        })
        .collect()
}

/// The per-model simulators for a *keyed* (cache-shared) measurement:
/// one per portfolio spec that admits `kind`, seeded purely from
/// `key_seed` — no scenario index, no trace position. Two cache misses
/// on the same key therefore measure on bit-identical simulator state,
/// which is what makes a cached entry indistinguishable from a fresh
/// one.
pub fn sims_for_key(
    specs: &[NicSpec],
    kind: NfKind,
    noise_sigma: f64,
    key_seed: u64,
) -> Vec<(NicModelId, Simulator)> {
    specs
        .iter()
        .enumerate()
        .filter(|(_, spec)| kind.profiled_on(spec))
        .map(|(m, spec)| {
            (
                spec.model(),
                simulator_for(
                    spec,
                    noise_sigma,
                    scenario_seed(model_seed_base(key_seed, m), 0),
                ),
            )
        })
        .collect()
}

/// Re-profiles a placed NF after its traffic has drifted to `traffic`
/// against the same per-model simulators used at preparation: re-derives
/// the workload (packet replay at the new profile) and every model's solo
/// baseline, keeping the instance's identity (its workload name) and SLA
/// contract. The SLA floors therefore track the drifted traffic — a drop
/// tolerance is relative to solo performance *at current traffic*,
/// matching how operators express NF SLAs. The returned record carries
/// baselines exactly for the models in `sims`.
pub fn reprofile_on(
    sims: &mut [(NicModelId, Simulator)],
    placed: &Placed,
    traffic: TrafficProfile,
    seed: u64,
) -> Placed {
    let entry = measure_entry(sims, placed.arrival.kind, traffic, seed);
    let mut arrival = placed.arrival.clone();
    arrival.traffic = traffic;
    // Rebranding after the measurement is byte-safe: the solver is
    // numerically independent of workload names (they only key lookups
    // and reports).
    placed_from_entry(&entry, arrival, Some(&placed.workload.name))
}

/// Single-model convenience around [`reprofile_on`].
pub fn reprofile(
    sim: &mut Simulator,
    placed: &Placed,
    traffic: TrafficProfile,
    seed: u64,
) -> Placed {
    let model = sim.spec().model();
    let entry = measure_entry_iter(
        std::iter::once((model, sim)),
        placed.arrival.kind,
        traffic,
        seed,
    );
    let mut arrival = placed.arrival.clone();
    arrival.traffic = traffic;
    placed_from_entry(&entry, arrival, Some(&placed.workload.name))
}

/// Runs one online placement episode on a homogeneous bank of NICs of
/// `sim`'s model: arrivals are placed one by one; capability-infeasible
/// arrivals (no solo baseline on the model) are rejected up front, never
/// silently mispredicted. Ground truth (violations) is evaluated once at
/// the end by co-running every NIC in the simulator.
pub fn place_sequence(
    sim: &mut Simulator,
    arrivals: &[Placed],
    mut strategy: Strategy<'_>,
) -> PlacementOutcome {
    let model = sim.spec().model();
    let max_cores = sim.spec().cores;
    let mut nics: Vec<Vec<Placed>> = Vec::new();
    let mut rejected = 0usize;
    for nf in arrivals {
        if !nf.supported_on(model) {
            rejected += 1;
            continue;
        }
        let slot = match &mut strategy {
            Strategy::Monopolization => None,
            Strategy::Greedy => nics
                .iter()
                .enumerate()
                .filter(|(_, nic)| fits(nic, nf, max_cores))
                .max_by_key(|(_, nic)| {
                    max_cores - nic.iter().map(|p| p.workload.cores).sum::<u32>()
                })
                .map(|(i, _)| i),
            Strategy::ContentionAware(pred) => nics.iter().position(|nic| {
                if !fits(nic, nf, max_cores) {
                    return false;
                }
                let mut candidate = nic.clone();
                candidate.push(nf.clone());
                (0..candidate.len())
                    .all(|i| pred.predict(model, i, &candidate) >= candidate[i].sla_floor(model))
            }),
        };
        match slot {
            Some(i) => nics[i].push(nf.clone()),
            None => nics.push(vec![nf.clone()]),
        }
    }
    // Ground-truth evaluation.
    let mut violations = 0usize;
    let mut placed = 0usize;
    for nic in &nics {
        let workloads: Vec<WorkloadSpec> = nic.iter().map(|p| p.workload.clone()).collect();
        let report = sim.co_run(&workloads);
        placed += nic.len();
        for (p, o) in nic.iter().zip(&report.outcomes) {
            if o.throughput_pps < p.sla_floor(model) {
                violations += 1;
            }
        }
    }
    PlacementOutcome {
        nics,
        violations,
        placed,
        rejected,
    }
}

fn fits(nic: &[Placed], nf: &Placed, max_cores: u32) -> bool {
    nic.iter().map(|p| p.workload.cores).sum::<u32>() + nf.workload.cores <= max_cores
}

/// Yala as a placement predictor: per-NIC-model trained models from a
/// [`ModelBank`]. The predictor *owns* its bank (cloned from the trained
/// reference at construction) so it can refine cells mid-episode from
/// audit observations ([`PlacementPredictor::absorb`]) without mutating
/// the caller's frozen copy.
pub struct YalaPredictor {
    bank: ModelBank<YalaModel>,
    absorbed: usize,
    refine_passes: usize,
}

impl YalaPredictor {
    /// Clones a trained per-model bank into a refinable working copy.
    pub fn new(bank: &ModelBank<YalaModel>) -> Self {
        Self {
            bank: bank.clone(),
            absorbed: 0,
            refine_passes: 0,
        }
    }

    /// The predictor's current (possibly refined) bank.
    pub fn bank(&self) -> &ModelBank<YalaModel> {
        &self.bank
    }

    /// Observations absorbed across all [`PlacementPredictor::absorb`]
    /// calls.
    pub fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// Absorb passes that refined at least one cell.
    pub fn refine_passes(&self) -> usize {
        self.refine_passes
    }
}

impl PlacementPredictor for YalaPredictor {
    fn predict(&mut self, model: NicModelId, target: usize, residents: &[Placed]) -> f64 {
        let t = &residents[target];
        let contenders: Vec<Contender> = residents
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != target)
            .map(|(_, p)| {
                self.bank
                    .expect(model, p.arrival.kind)
                    .as_contender(p.solo(model).counters, p.arrival.traffic.mtbr)
            })
            .collect();
        self.bank.expect(model, t.arrival.kind).predict(
            t.solo(model).solo_tput,
            &t.arrival.traffic,
            &contenders,
        )
    }

    fn absorb(&mut self, buffer: &ObservationBuffer, engine: &Engine) -> usize {
        let n = self.bank.refine(buffer, engine);
        if n > 0 {
            self.absorbed += n;
            self.refine_passes += 1;
        }
        n
    }
}

/// SLOMO as a placement predictor (memory-only view + extrapolation),
/// with per-NIC-model trained models. Owns a refinable working copy of
/// its bank, like [`YalaPredictor`].
pub struct SlomoPredictor {
    bank: ModelBank<SlomoModel>,
    absorbed: usize,
    refine_passes: usize,
}

impl SlomoPredictor {
    /// Clones a trained per-model bank into a refinable working copy.
    pub fn new(bank: &ModelBank<SlomoModel>) -> Self {
        Self {
            bank: bank.clone(),
            absorbed: 0,
            refine_passes: 0,
        }
    }

    /// The predictor's current (possibly refined) bank.
    pub fn bank(&self) -> &ModelBank<SlomoModel> {
        &self.bank
    }

    /// Observations absorbed across all [`PlacementPredictor::absorb`]
    /// calls.
    pub fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// Absorb passes that refined at least one cell.
    pub fn refine_passes(&self) -> usize {
        self.refine_passes
    }
}

impl PlacementPredictor for SlomoPredictor {
    fn predict(&mut self, model: NicModelId, target: usize, residents: &[Placed]) -> f64 {
        let t = &residents[target];
        let agg = CounterSample::aggregate(
            residents
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != target)
                .map(|(_, p)| &p.solo(model).counters),
        );
        self.bank
            .expect(model, t.arrival.kind)
            .predict_extrapolated(&agg, t.solo(model).solo_tput)
    }

    fn absorb(&mut self, buffer: &ObservationBuffer, engine: &Engine) -> usize {
        let n = self.bank.refine(buffer, engine);
        if n > 0 {
            self.absorbed += n;
            self.refine_passes += 1;
        }
        n
    }
}

/// Ground-truth simulation as the predictor: the oracle/reference plan,
/// with one private noise-free simulator per NIC model it may be asked
/// about. The oracle keeps the default no-op
/// [`PlacementPredictor::absorb`]: it *is* the ground truth the
/// observations were measured against, so it stays the fixed reference
/// online refinement is compared to.
pub struct OraclePredictor {
    sims: Vec<(NicModelId, Simulator)>,
}

impl OraclePredictor {
    /// Builds an oracle around a fresh simulator for one NIC model.
    pub fn new(spec: NicSpec) -> Self {
        Self::for_models(std::slice::from_ref(&spec))
    }

    /// Builds an oracle covering every model of a portfolio.
    pub fn for_models(specs: &[NicSpec]) -> Self {
        Self {
            sims: specs
                .iter()
                .map(|s| (s.model(), Simulator::new(s.clone())))
                .collect(),
        }
    }

    fn sim(&mut self, model: NicModelId) -> &mut Simulator {
        self.sims
            .iter_mut()
            .find(|(m, _)| *m == model)
            .map(|(_, s)| s)
            .unwrap_or_else(|| panic!("oracle has no simulator for NIC model {model}"))
    }
}

impl PlacementPredictor for OraclePredictor {
    fn predict(&mut self, model: NicModelId, target: usize, residents: &[Placed]) -> f64 {
        let workloads: Vec<WorkloadSpec> = residents.iter().map(|p| p.workload.clone()).collect();
        self.sim(model).co_run(&workloads).outcomes[target].throughput_pps
    }

    /// One co-run yields every resident's ground-truth throughput, so the
    /// oracle audits a whole NIC with a single fixed-point solve instead
    /// of `residents.len()` of them.
    fn reevaluate(&mut self, model: NicModelId, residents: &[Placed]) -> Vec<usize> {
        if residents.is_empty() {
            return Vec::new();
        }
        let workloads: Vec<WorkloadSpec> = residents.iter().map(|p| p.workload.clone()).collect();
        let report = self.sim(model).co_run(&workloads);
        residents
            .iter()
            .zip(&report.outcomes)
            .enumerate()
            .filter(|(_, (p, o))| o.throughput_pps < p.sla_floor(model))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sim() -> Simulator {
        Simulator::new(NicSpec::bluefield2())
    }

    fn bf2() -> NicModelId {
        NicSpec::bluefield2().model()
    }

    fn arrivals(sim: &mut Simulator, n: usize) -> Vec<Placed> {
        let kinds = [
            NfKind::FlowStats,
            NfKind::Acl,
            NfKind::IpRouter,
            NfKind::Nat,
        ];
        let mut rng = StdRng::seed_from_u64(3);
        (0..n)
            .map(|i| {
                let arrival = Arrival {
                    kind: kinds[i % kinds.len()],
                    traffic: TrafficProfile::default(),
                    sla_drop: rng.gen_range(0.05..0.20),
                    qos: QosClass::Guaranteed,
                };
                prepare(sim, arrival, i as u64)
            })
            .collect()
    }

    #[test]
    fn monopolization_never_violates() {
        let mut s = sim();
        let a = arrivals(&mut s, 8);
        let out = place_sequence(&mut s, &a, Strategy::Monopolization);
        assert_eq!(out.nics.len(), 8);
        assert_eq!(out.violations, 0);
        assert_eq!(out.rejected, 0);
    }

    #[test]
    fn greedy_uses_fewer_nics_but_may_violate() {
        let mut s = sim();
        let a = arrivals(&mut s, 12);
        let mono = place_sequence(&mut s, &a, Strategy::Monopolization);
        let greedy = place_sequence(&mut s, &a, Strategy::Greedy);
        assert!(greedy.nics.len() < mono.nics.len());
        // 4 NFs of 2 cores fit an 8-core NIC.
        assert_eq!(greedy.nics.len(), 3);
    }

    #[test]
    fn oracle_respects_slas_with_fewer_nics_than_monopolization() {
        let mut s = sim();
        let a = arrivals(&mut s, 12);
        let mut oracle = OraclePredictor::new(NicSpec::bluefield2());
        let out = place_sequence(&mut s, &a, Strategy::ContentionAware(&mut oracle));
        assert_eq!(out.violations, 0, "oracle must not violate");
        assert!(out.nics.len() <= 12);
    }

    #[test]
    fn wastage_accounting() {
        let out = PlacementOutcome {
            nics: vec![vec![], vec![], vec![]],
            violations: 1,
            placed: 10,
            rejected: 0,
        };
        assert!((out.wastage_vs(2) - 0.5).abs() < 1e-12);
        assert!((out.violation_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn prepare_all_parallel_matches_sequential_loop() {
        let specs = [NicSpec::bluefield2()];
        let kinds = [NfKind::FlowStats, NfKind::Acl, NfKind::Nat];
        let arrivals: Vec<Arrival> = (0..6)
            .map(|i| Arrival {
                kind: kinds[i % kinds.len()],
                traffic: TrafficProfile::new(4_000 + 1_000 * i as u32, 512, 0.0),
                sla_drop: 0.1,
                qos: QosClass::Guaranteed,
            })
            .collect();
        let par = prepare_all(&specs, 0.0, &arrivals, 40, &Engine::with_threads(4));
        let seq = prepare_all(&specs, 0.0, &arrivals, 40, &Engine::sequential());
        assert_eq!(par.len(), 6);
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.workload, s.workload);
            assert_eq!(p.solos, s.solos);
        }
        // ...and the placement decisions derived from them are identical.
        let mut sim = sim();
        let g1 = place_sequence(&mut sim, &par, Strategy::Greedy);
        let g2 = place_sequence(&mut sim, &seq, Strategy::Greedy);
        assert_eq!(g1.nics.len(), g2.nics.len());
        assert_eq!(g1.violations, g2.violations);
    }

    #[test]
    fn prepare_all_profiles_per_model_and_skips_infeasible() {
        let specs = [NicSpec::bluefield2(), NicSpec::pensando()];
        let arrivals = vec![
            Arrival {
                kind: NfKind::FlowStats, // memory-only: both models
                traffic: TrafficProfile::default(),
                sla_drop: 0.1,
                qos: QosClass::Guaranteed,
            },
            Arrival {
                kind: NfKind::Nids, // regex: BlueField-2 only
                traffic: TrafficProfile::default(),
                sla_drop: 0.1,
                qos: QosClass::Guaranteed,
            },
        ];
        let placed = prepare_all(&specs, 0.0, &arrivals, 7, &Engine::sequential());
        let (bf2, pen) = (specs[0].model(), specs[1].model());
        assert!(placed[0].supported_on(bf2) && placed[0].supported_on(pen));
        assert!(placed[1].supported_on(bf2) && !placed[1].supported_on(pen));
        // The two hardware models measure different solo baselines.
        assert_ne!(placed[0].solo(bf2).solo_tput, placed[0].solo(pen).solo_tput);
        // Model 0's baseline matches the homogeneous single-spec path.
        let homog = prepare_all(&specs[..1], 0.0, &arrivals, 7, &Engine::sequential());
        assert_eq!(placed[0].solo(bf2), homog[0].solo(bf2));
        assert_eq!(placed[1].solo(bf2), homog[1].solo(bf2));
    }

    #[test]
    fn infeasible_arrivals_are_rejected_not_placed() {
        let mut pen_sim = Simulator::new(NicSpec::pensando());
        let specs = [NicSpec::bluefield2(), NicSpec::pensando()];
        let arrivals: Vec<Arrival> = [NfKind::Nids, NfKind::FlowStats, NfKind::PacketFilter]
            .iter()
            .map(|&kind| Arrival {
                kind,
                traffic: TrafficProfile::default(),
                sla_drop: 0.1,
                qos: QosClass::Guaranteed,
            })
            .collect();
        let placed = prepare_all(&specs, 0.0, &arrivals, 3, &Engine::sequential());
        let out = place_sequence(&mut pen_sim, &placed, Strategy::Greedy);
        assert_eq!(out.rejected, 2, "both regex NFs rejected on Pensando");
        assert_eq!(out.placed, 1);
        for nic in &out.nics {
            for p in nic {
                assert!(p.supported_on(NicSpec::pensando().model()));
            }
        }
    }

    #[test]
    fn reprofile_keeps_identity_and_tracks_traffic() {
        let mut s = sim();
        let placed = prepare(
            &mut s,
            Arrival {
                kind: NfKind::FlowStats,
                traffic: TrafficProfile::new(4_000, 512, 0.0),
                sla_drop: 0.1,
                qos: QosClass::Guaranteed,
            },
            7,
        );
        let model = bf2();
        let drifted = TrafficProfile::new(200_000, 1500, 0.0);
        let re = reprofile(&mut s, &placed, drifted, 7);
        assert_eq!(re.workload.name, placed.workload.name, "identity kept");
        assert_eq!(re.arrival.traffic, drifted);
        assert_eq!(re.arrival.sla_drop, placed.arrival.sla_drop);
        // 50x the flows at triple the packet size: the workload and its
        // solo reference must actually change.
        assert_ne!(re.solo(model).solo_tput, placed.solo(model).solo_tput);
        assert_ne!(re.solo(model).counters, placed.solo(model).counters);
        // Re-profiling back at the original traffic restores the solo
        // reference (noise-free simulator, same workload seed).
        let back = reprofile(&mut s, &re, placed.arrival.traffic, 7);
        assert_eq!(back.solo(model).solo_tput, placed.solo(model).solo_tput);
    }

    #[test]
    fn oracle_reevaluate_matches_default_hook() {
        // The oracle's single-co-run override must agree with the default
        // per-resident predict() loop (both are ground truth on a
        // noise-free simulator).
        let mut s = sim();
        let a = arrivals(&mut s, 6);
        struct DefaultOracle(Simulator);
        impl PlacementPredictor for DefaultOracle {
            fn predict(&mut self, _model: NicModelId, target: usize, residents: &[Placed]) -> f64 {
                let ws: Vec<WorkloadSpec> = residents.iter().map(|p| p.workload.clone()).collect();
                self.0.co_run(&ws).outcomes[target].throughput_pps
            }
        }
        let mut oracle = OraclePredictor::new(NicSpec::bluefield2());
        let mut default_oracle = DefaultOracle(Simulator::new(NicSpec::bluefield2()));
        for chunk in a.chunks(3) {
            assert_eq!(
                oracle.reevaluate(bf2(), chunk),
                default_oracle.reevaluate(bf2(), chunk)
            );
        }
        assert!(oracle.reevaluate(bf2(), &[]).is_empty());
    }

    #[test]
    fn tight_sla_forces_spreading() {
        let mut s = sim();
        // Memory-hungry NFs with a 1% SLA: the oracle must mostly isolate.
        let mut rng = StdRng::seed_from_u64(9);
        let a: Vec<Placed> = (0..6)
            .map(|i| {
                let _ = rng.gen::<f64>();
                prepare(
                    &mut s,
                    Arrival {
                        kind: NfKind::FlowStats,
                        traffic: TrafficProfile::new(200_000, 1500, 0.0),
                        sla_drop: 0.01,
                        qos: QosClass::Guaranteed,
                    },
                    i,
                )
            })
            .collect();
        let mut oracle = OraclePredictor::new(NicSpec::bluefield2());
        let strict = place_sequence(&mut s, &a, Strategy::ContentionAware(&mut oracle));
        assert_eq!(strict.violations, 0);
        let greedy = place_sequence(&mut s, &a, Strategy::Greedy);
        assert!(
            strict.nics.len() > greedy.nics.len(),
            "1% SLA should force more NICs than blind packing"
        );
    }
}
