//! # yala-placement — contention-aware NF scheduling (§7.5.1)
//!
//! The operator places arriving NFs onto a cluster of SmartNICs, maximising
//! utilisation (minimum NICs) while holding each NF's SLA — a maximum
//! allowed throughput drop relative to running solo. The offline problem is
//! bin packing; following the paper we compare *online* strategies:
//!
//! * **Monopolization** — one NF per NIC (zero violations, maximal waste).
//! * **Greedy** — pack onto the NIC with the most available cores
//!   (contention-blind).
//! * **Contention-aware** — place only where the predictor (SLOMO or Yala)
//!   expects no SLA violation for anyone on the NIC.
//! * **Oracle** — contention-aware with ground-truth co-run simulation as
//!   the "predictor": the reference plan for resource-wastage accounting
//!   (the paper's exhaustive-search optimum is infeasible at 500 arrivals;
//!   an oracle-checked first fit measures the same thing — how many NICs a
//!   perfect predictor needs).

use yala_core::engine::{scenario_seed, simulator_for, Engine};
use yala_core::{Contender, YalaModel};
use yala_nf::NfKind;
use yala_sim::{CounterSample, NicSpec, Simulator, WorkloadSpec};
use yala_slomo::SlomoModel;
use yala_traffic::TrafficProfile;

/// One arriving NF instance.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Which NF.
    pub kind: NfKind,
    /// Its traffic profile.
    pub traffic: TrafficProfile,
    /// Maximum tolerated throughput drop vs. solo (e.g. 0.1 = 10%).
    pub sla_drop: f64,
}

/// An NF instance placed on a NIC.
#[derive(Debug, Clone)]
pub struct Placed {
    /// The arrival it satisfies.
    pub arrival: Arrival,
    /// Its profiled workload.
    pub workload: WorkloadSpec,
    /// Its solo throughput (SLA reference).
    pub solo_tput: f64,
    /// Its solo counter vector (contentiousness).
    pub counters: CounterSample,
}

impl Placed {
    /// The lowest throughput this instance may run at without violating
    /// its SLA.
    pub fn sla_floor(&self) -> f64 {
        self.solo_tput * (1.0 - self.arrival.sla_drop)
    }
}

/// A predictor that judges whether a candidate co-location is SLA-safe.
pub trait PlacementPredictor {
    /// Predicted throughput of `residents[target]` when all `residents`
    /// share one NIC.
    fn predict(&mut self, target: usize, residents: &[Placed]) -> f64;

    /// Re-evaluates an already-populated NIC — e.g. after traffic drift
    /// has shifted some residents' profiles — and returns the indices of
    /// residents predicted to violate their SLA floor, in ascending
    /// order. A fleet orchestrator calls this each audit epoch to decide
    /// whether to migrate. The default issues one [`Self::predict`] per
    /// resident; implementations that can evaluate a whole NIC at once
    /// (the oracle's single co-run) may override it.
    fn reevaluate(&mut self, residents: &[Placed]) -> Vec<usize> {
        (0..residents.len())
            .filter(|&i| self.predict(i, residents) < residents[i].sla_floor())
            .collect()
    }
}

/// The placement strategies of Table 6.
pub enum Strategy<'a> {
    /// One NF per NIC.
    Monopolization,
    /// Most-available-cores first, prediction-free.
    Greedy,
    /// Place only if `predictor` foresees no SLA violation on the NIC.
    ContentionAware(&'a mut dyn PlacementPredictor),
}

/// Result of placing one arrival sequence.
#[derive(Debug, Clone)]
pub struct PlacementOutcome {
    /// NICs used, each holding its placed NFs.
    pub nics: Vec<Vec<Placed>>,
    /// Ground-truth SLA violations across all placed NFs.
    pub violations: usize,
    /// Total NFs placed.
    pub placed: usize,
}

impl PlacementOutcome {
    /// Fraction of NFs whose SLA is violated at ground truth.
    pub fn violation_rate(&self) -> f64 {
        if self.placed == 0 {
            0.0
        } else {
            self.violations as f64 / self.placed as f64
        }
    }

    /// Resource wastage vs. a reference plan: `(used - reference) /
    /// reference` (can be negative for plans that over-pack and violate
    /// SLAs, as SLOMO does in the paper).
    pub fn wastage_vs(&self, reference_nics: usize) -> f64 {
        assert!(
            reference_nics > 0,
            "reference plan must use at least one NIC"
        );
        (self.nics.len() as f64 - reference_nics as f64) / reference_nics as f64
    }
}

/// Prepares a [`Placed`] record for an arrival (profiles the workload and
/// measures solo throughput/counters).
pub fn prepare(sim: &mut Simulator, arrival: Arrival, seed: u64) -> Placed {
    let mut workload = arrival.kind.workload(arrival.traffic, seed);
    // Co-runs require unique names; instances of the same NF type must not
    // collide.
    workload.name = format!("{}-{seed}", workload.name);
    let outcome = sim.solo(&workload);
    Placed {
        arrival,
        workload,
        solo_tput: outcome.throughput_pps,
        counters: outcome.counters,
    }
}

/// Prepares a whole arrival sequence, one independent scenario per
/// arrival, dispatched across `engine`'s worker pool. Arrival `i` is
/// profiled (packet replay through the real NF) and solo-measured on a
/// private simulator seeded `scenario_seed(base_seed, i)`; its workload
/// seed is `base_seed + i`, matching the sequential convention. The
/// returned sequence — and therefore every placement decision derived
/// from it — is bit-identical whatever the engine's thread count.
pub fn prepare_all(
    spec: &NicSpec,
    noise_sigma: f64,
    arrivals: &[Arrival],
    base_seed: u64,
    engine: &Engine,
) -> Vec<Placed> {
    engine.run(arrivals.len(), |i| {
        let mut sim = simulator_for(spec, noise_sigma, scenario_seed(base_seed, i));
        prepare(
            &mut sim,
            arrivals[i].clone(),
            base_seed.wrapping_add(i as u64),
        )
    })
}

/// Re-profiles a placed NF after its traffic has drifted to `traffic`:
/// re-derives the workload (packet replay at the new profile), solo
/// throughput, and counter vector, keeping the instance's identity (its
/// workload name) and SLA contract. The SLA floor therefore tracks the
/// drifted traffic — a drop tolerance is relative to solo performance *at
/// current traffic*, matching how operators express NF SLAs.
pub fn reprofile(
    sim: &mut Simulator,
    placed: &Placed,
    traffic: TrafficProfile,
    seed: u64,
) -> Placed {
    let mut arrival = placed.arrival.clone();
    arrival.traffic = traffic;
    let mut workload = arrival.kind.workload(traffic, seed);
    workload.name = placed.workload.name.clone();
    let outcome = sim.solo(&workload);
    Placed {
        arrival,
        workload,
        solo_tput: outcome.throughput_pps,
        counters: outcome.counters,
    }
}

/// Runs one online placement episode: arrivals are placed one by one.
/// Ground truth (violations) is evaluated once at the end by co-running
/// every NIC in the simulator.
pub fn place_sequence(
    sim: &mut Simulator,
    arrivals: &[Placed],
    mut strategy: Strategy<'_>,
) -> PlacementOutcome {
    let max_cores = sim.spec().cores;
    let mut nics: Vec<Vec<Placed>> = Vec::new();
    for nf in arrivals {
        let slot = match &mut strategy {
            Strategy::Monopolization => None,
            Strategy::Greedy => nics
                .iter()
                .enumerate()
                .filter(|(_, nic)| fits(nic, nf, max_cores))
                .max_by_key(|(_, nic)| {
                    max_cores - nic.iter().map(|p| p.workload.cores).sum::<u32>()
                })
                .map(|(i, _)| i),
            Strategy::ContentionAware(pred) => nics.iter().position(|nic| {
                if !fits(nic, nf, max_cores) {
                    return false;
                }
                let mut candidate = nic.clone();
                candidate.push(nf.clone());
                (0..candidate.len())
                    .all(|i| pred.predict(i, &candidate) >= candidate[i].sla_floor())
            }),
        };
        match slot {
            Some(i) => nics[i].push(nf.clone()),
            None => nics.push(vec![nf.clone()]),
        }
    }
    // Ground-truth evaluation.
    let mut violations = 0usize;
    for nic in &nics {
        let workloads: Vec<WorkloadSpec> = nic.iter().map(|p| p.workload.clone()).collect();
        let report = sim.co_run(&workloads);
        for (p, o) in nic.iter().zip(&report.outcomes) {
            if o.throughput_pps < p.sla_floor() {
                violations += 1;
            }
        }
    }
    PlacementOutcome {
        nics,
        violations,
        placed: arrivals.len(),
    }
}

fn fits(nic: &[Placed], nf: &Placed, max_cores: u32) -> bool {
    nic.iter().map(|p| p.workload.cores).sum::<u32>() + nf.workload.cores <= max_cores
}

/// Yala as a placement predictor.
pub struct YalaPredictor<'a> {
    models: &'a [(NfKind, YalaModel)],
}

impl<'a> YalaPredictor<'a> {
    /// Wraps trained per-NF models.
    pub fn new(models: &'a [(NfKind, YalaModel)]) -> Self {
        Self { models }
    }

    fn model(&self, kind: NfKind) -> &YalaModel {
        &self
            .models
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("model trained")
            .1
    }
}

impl PlacementPredictor for YalaPredictor<'_> {
    fn predict(&mut self, target: usize, residents: &[Placed]) -> f64 {
        let t = &residents[target];
        let contenders: Vec<Contender> = residents
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != target)
            .map(|(_, p)| {
                self.model(p.arrival.kind)
                    .as_contender(p.counters, p.arrival.traffic.mtbr)
            })
            .collect();
        self.model(t.arrival.kind)
            .predict(t.solo_tput, &t.arrival.traffic, &contenders)
    }
}

/// SLOMO as a placement predictor (memory-only view + extrapolation).
pub struct SlomoPredictor<'a> {
    models: &'a [(NfKind, SlomoModel)],
}

impl<'a> SlomoPredictor<'a> {
    /// Wraps trained per-NF SLOMO models.
    pub fn new(models: &'a [(NfKind, SlomoModel)]) -> Self {
        Self { models }
    }
}

impl PlacementPredictor for SlomoPredictor<'_> {
    fn predict(&mut self, target: usize, residents: &[Placed]) -> f64 {
        let t = &residents[target];
        let agg = CounterSample::aggregate(
            residents
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != target)
                .map(|(_, p)| &p.counters),
        );
        let model = &self
            .models
            .iter()
            .find(|(k, _)| *k == t.arrival.kind)
            .expect("model trained")
            .1;
        model.predict_extrapolated(&agg, t.solo_tput)
    }
}

/// Ground-truth simulation as the predictor: the oracle/reference plan.
pub struct OraclePredictor {
    sim: Simulator,
}

impl OraclePredictor {
    /// Builds an oracle around a fresh simulator for the given NIC.
    pub fn new(spec: NicSpec) -> Self {
        Self {
            sim: Simulator::new(spec),
        }
    }
}

impl PlacementPredictor for OraclePredictor {
    fn predict(&mut self, target: usize, residents: &[Placed]) -> f64 {
        let workloads: Vec<WorkloadSpec> = residents.iter().map(|p| p.workload.clone()).collect();
        self.sim.co_run(&workloads).outcomes[target].throughput_pps
    }

    /// One co-run yields every resident's ground-truth throughput, so the
    /// oracle audits a whole NIC with a single fixed-point solve instead
    /// of `residents.len()` of them.
    fn reevaluate(&mut self, residents: &[Placed]) -> Vec<usize> {
        if residents.is_empty() {
            return Vec::new();
        }
        let workloads: Vec<WorkloadSpec> = residents.iter().map(|p| p.workload.clone()).collect();
        let report = self.sim.co_run(&workloads);
        residents
            .iter()
            .zip(&report.outcomes)
            .enumerate()
            .filter(|(_, (p, o))| o.throughput_pps < p.sla_floor())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sim() -> Simulator {
        Simulator::new(NicSpec::bluefield2())
    }

    fn arrivals(sim: &mut Simulator, n: usize) -> Vec<Placed> {
        let kinds = [
            NfKind::FlowStats,
            NfKind::Acl,
            NfKind::IpRouter,
            NfKind::Nat,
        ];
        let mut rng = StdRng::seed_from_u64(3);
        (0..n)
            .map(|i| {
                let arrival = Arrival {
                    kind: kinds[i % kinds.len()],
                    traffic: TrafficProfile::default(),
                    sla_drop: rng.gen_range(0.05..0.20),
                };
                prepare(sim, arrival, i as u64)
            })
            .collect()
    }

    #[test]
    fn monopolization_never_violates() {
        let mut s = sim();
        let a = arrivals(&mut s, 8);
        let out = place_sequence(&mut s, &a, Strategy::Monopolization);
        assert_eq!(out.nics.len(), 8);
        assert_eq!(out.violations, 0);
    }

    #[test]
    fn greedy_uses_fewer_nics_but_may_violate() {
        let mut s = sim();
        let a = arrivals(&mut s, 12);
        let mono = place_sequence(&mut s, &a, Strategy::Monopolization);
        let greedy = place_sequence(&mut s, &a, Strategy::Greedy);
        assert!(greedy.nics.len() < mono.nics.len());
        // 4 NFs of 2 cores fit an 8-core NIC.
        assert_eq!(greedy.nics.len(), 3);
    }

    #[test]
    fn oracle_respects_slas_with_fewer_nics_than_monopolization() {
        let mut s = sim();
        let a = arrivals(&mut s, 12);
        let mut oracle = OraclePredictor::new(NicSpec::bluefield2());
        let out = place_sequence(&mut s, &a, Strategy::ContentionAware(&mut oracle));
        assert_eq!(out.violations, 0, "oracle must not violate");
        assert!(out.nics.len() <= 12);
    }

    #[test]
    fn wastage_accounting() {
        let out = PlacementOutcome {
            nics: vec![vec![], vec![], vec![]],
            violations: 1,
            placed: 10,
        };
        assert!((out.wastage_vs(2) - 0.5).abs() < 1e-12);
        assert!((out.violation_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn prepare_all_parallel_matches_sequential_loop() {
        let spec = NicSpec::bluefield2();
        let kinds = [NfKind::FlowStats, NfKind::Acl, NfKind::Nat];
        let arrivals: Vec<Arrival> = (0..6)
            .map(|i| Arrival {
                kind: kinds[i % kinds.len()],
                traffic: TrafficProfile::new(4_000 + 1_000 * i as u32, 512, 0.0),
                sla_drop: 0.1,
            })
            .collect();
        let par = prepare_all(&spec, 0.0, &arrivals, 40, &Engine::with_threads(4));
        let seq = prepare_all(&spec, 0.0, &arrivals, 40, &Engine::sequential());
        assert_eq!(par.len(), 6);
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.workload, s.workload);
            assert_eq!(p.solo_tput, s.solo_tput);
            assert_eq!(p.counters, s.counters);
        }
        // ...and the placement decisions derived from them are identical.
        let mut sim = sim();
        let g1 = place_sequence(&mut sim, &par, Strategy::Greedy);
        let g2 = place_sequence(&mut sim, &seq, Strategy::Greedy);
        assert_eq!(g1.nics.len(), g2.nics.len());
        assert_eq!(g1.violations, g2.violations);
    }

    #[test]
    fn reprofile_keeps_identity_and_tracks_traffic() {
        let mut s = sim();
        let placed = prepare(
            &mut s,
            Arrival {
                kind: NfKind::FlowStats,
                traffic: TrafficProfile::new(4_000, 512, 0.0),
                sla_drop: 0.1,
            },
            7,
        );
        let drifted = TrafficProfile::new(200_000, 1500, 0.0);
        let re = reprofile(&mut s, &placed, drifted, 7);
        assert_eq!(re.workload.name, placed.workload.name, "identity kept");
        assert_eq!(re.arrival.traffic, drifted);
        assert_eq!(re.arrival.sla_drop, placed.arrival.sla_drop);
        // 50x the flows at triple the packet size: the workload and its
        // solo reference must actually change.
        assert_ne!(re.solo_tput, placed.solo_tput);
        assert_ne!(re.counters, placed.counters);
        // Re-profiling back at the original traffic restores the solo
        // reference (noise-free simulator, same workload seed).
        let back = reprofile(&mut s, &re, placed.arrival.traffic, 7);
        assert_eq!(back.solo_tput, placed.solo_tput);
    }

    #[test]
    fn oracle_reevaluate_matches_default_hook() {
        // The oracle's single-co-run override must agree with the default
        // per-resident predict() loop (both are ground truth on a
        // noise-free simulator).
        let mut s = sim();
        let a = arrivals(&mut s, 6);
        struct DefaultOracle(Simulator);
        impl PlacementPredictor for DefaultOracle {
            fn predict(&mut self, target: usize, residents: &[Placed]) -> f64 {
                let ws: Vec<WorkloadSpec> = residents.iter().map(|p| p.workload.clone()).collect();
                self.0.co_run(&ws).outcomes[target].throughput_pps
            }
        }
        let mut oracle = OraclePredictor::new(NicSpec::bluefield2());
        let mut default_oracle = DefaultOracle(Simulator::new(NicSpec::bluefield2()));
        for chunk in a.chunks(3) {
            assert_eq!(oracle.reevaluate(chunk), default_oracle.reevaluate(chunk));
        }
        assert!(oracle.reevaluate(&[]).is_empty());
    }

    #[test]
    fn tight_sla_forces_spreading() {
        let mut s = sim();
        // Memory-hungry NFs with a 1% SLA: the oracle must mostly isolate.
        let mut rng = StdRng::seed_from_u64(9);
        let a: Vec<Placed> = (0..6)
            .map(|i| {
                let _ = rng.gen::<f64>();
                prepare(
                    &mut s,
                    Arrival {
                        kind: NfKind::FlowStats,
                        traffic: TrafficProfile::new(200_000, 1500, 0.0),
                        sla_drop: 0.01,
                    },
                    i,
                )
            })
            .collect();
        let mut oracle = OraclePredictor::new(NicSpec::bluefield2());
        let strict = place_sequence(&mut s, &a, Strategy::ContentionAware(&mut oracle));
        assert_eq!(strict.violations, 0);
        let greedy = place_sequence(&mut s, &a, Strategy::Greedy);
        assert!(
            strict.nics.len() > greedy.nics.len(),
            "1% SLA should force more NICs than blind packing"
        );
    }
}
