//! Seeded property tests for the placement invariants the fleet
//! orchestrator builds on: across randomized arrival sequences (kinds,
//! traffic profiles, SLA tightness), the contention-aware strategy backed
//! by the ground-truth oracle never produces an oracle-checked SLA
//! violation, and monopolization's NIC count is an upper bound on every
//! other strategy's.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use yala_core::QosClass;
use yala_nf::NfKind;
use yala_placement::{place_sequence, prepare, Arrival, OraclePredictor, Placed, Strategy};
use yala_sim::{NicSpec, Simulator};
use yala_traffic::TrafficProfile;

/// Draws one random arrival sequence: mixed NF kinds (memory-bound,
/// accelerator-bound, and traffic-sensitive), random traffic within the
/// evaluation ranges, and SLAs between tight (5%) and loose (25%).
fn random_arrivals(sim: &mut Simulator, seed: u64, n: usize) -> Vec<Placed> {
    let kinds = [
        NfKind::FlowStats,
        NfKind::Acl,
        NfKind::Nat,
        NfKind::IpRouter,
        NfKind::Nids,
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let arrival = Arrival {
                kind: *kinds.choose(&mut rng).expect("nonempty"),
                traffic: TrafficProfile::random(&mut rng, 128_000),
                sla_drop: rng.gen_range(0.05..0.25),
                qos: QosClass::Guaranteed,
            };
            prepare(sim, arrival, seed * 1_000 + i as u64)
        })
        .collect()
}

#[test]
fn contention_aware_oracle_never_violates() {
    for seed in [1u64, 7, 23, 51] {
        // Noise-free ground truth: the oracle predictor and the episode's
        // final evaluation must agree exactly.
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let arrivals = random_arrivals(&mut sim, seed, 12);
        let mut oracle = OraclePredictor::new(NicSpec::bluefield2());
        let out = place_sequence(&mut sim, &arrivals, Strategy::ContentionAware(&mut oracle));
        assert_eq!(
            out.violations, 0,
            "oracle-checked contention-aware placement violated an SLA (seed {seed})"
        );
        assert_eq!(out.placed, arrivals.len());
    }
}

#[test]
fn monopolization_nic_count_bounds_every_strategy() {
    for seed in [2u64, 13, 40] {
        let mut sim = Simulator::new(NicSpec::bluefield2());
        let arrivals = random_arrivals(&mut sim, seed, 10);
        let mono = place_sequence(&mut sim, &arrivals, Strategy::Monopolization);
        assert_eq!(mono.violations, 0, "monopolization never violates");
        assert_eq!(mono.nics.len(), arrivals.len());

        let greedy = place_sequence(&mut sim, &arrivals, Strategy::Greedy);
        let mut oracle = OraclePredictor::new(NicSpec::bluefield2());
        let aware = place_sequence(&mut sim, &arrivals, Strategy::ContentionAware(&mut oracle));
        for (name, out) in [("greedy", &greedy), ("contention-aware", &aware)] {
            assert!(
                mono.nics.len() >= out.nics.len(),
                "monopolization ({}) must use at least as many NICs as {name} ({}) at seed {seed}",
                mono.nics.len(),
                out.nics.len()
            );
        }
    }
}
