//! A self-contained, deterministic stand-in for the subset of the `rand`
//! 0.8 API this workspace uses. The build environment has no crates.io
//! access, so the workspace vendors this implementation instead of the real
//! crate (see `DESIGN.md`, "dependency substitution").
//!
//! The statistical contract is the same as upstream's for our purposes:
//! [`rngs::StdRng`] is a high-quality 64-bit generator (xoshiro256++ seeded
//! through SplitMix64), `gen_range` draws are unbiased to well below any
//! tolerance the test suite asserts, and every draw is deterministic in the
//! seed. The *streams differ* from upstream `StdRng` (which is ChaCha12);
//! nothing in the workspace depends on upstream's exact streams.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for the type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types `gen_range` can sample uniformly from a half-open span.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// The successor used to turn an inclusive bound into an exclusive one.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty gen_range span");
                let span = (hi as i128 - lo as i128) as u64;
                // Lemire multiply-shift: unbiased to < 2^-64 over our spans.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as i128 + draw as i128) as $t
            }

            fn successor(self) -> Self {
                self.checked_add(1).expect("inclusive range bound overflows")
            }
        }
    )*};
}

impl_sample_uniform_int!(i32, i64, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo < hi, "empty gen_range span");
        lo + (hi - lo) * f64::sample(rng)
    }

    fn successor(self) -> Self {
        // Inclusive float ranges sample the same span; the endpoint has
        // measure zero, matching upstream's behaviour closely enough.
        self
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        if lo == hi {
            return lo;
        }
        T::sample_in(rng, lo, hi.successor())
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ state seeded via
    /// SplitMix64. Fast, full 64-bit output, passes BigCrush — more than
    /// enough quality for profiling sweeps and synthetic traffic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice utilities: the `shuffle` / `choose` subset the workspace uses.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic in the generator state.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_stays_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(10u32..=12);
            assert!((10..=12).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(-3.0f64..5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.8)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.8).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_permutes_and_choose_is_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements almost surely move");

        let opts = [1u8, 2, 3];
        let mut counts = [0usize; 3];
        for _ in 0..3_000 {
            counts[(*opts.choose(&mut rng).unwrap() - 1) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
    }
}
