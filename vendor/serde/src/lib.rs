//! Vendored serde facade: re-exports the no-op derives so workspace types
//! can keep their `#[derive(Serialize, Deserialize)]` annotations without a
//! crates.io dependency. Swap this path dependency for the real `serde`
//! (with `features = ["derive"]`) in a networked environment and nothing
//! else changes.

pub use serde_derive::{Deserialize, Serialize};
