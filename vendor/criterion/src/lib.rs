//! A minimal, dependency-free benchmark harness exposing the criterion API
//! subset the workspace's benches use (`Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros). The offline build environment cannot fetch
//! the real criterion; this harness keeps `cargo bench` functional and
//! reports real median wall-clock timings so relative comparisons (e.g.
//! scalar vs. batched profiling) are meaningful.
//!
//! Methodology: each benchmark is warmed up, then timed over a fixed
//! number of samples; each sample runs enough iterations to amortise timer
//! overhead. The *median* per-iteration time is reported (robust to
//! scheduler noise). No statistics files are written.

use std::time::{Duration, Instant};

/// Target wall-clock time per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);
/// Warm-up budget before sampling starts.
const WARMUP_TARGET: Duration = Duration::from_millis(100);

/// Re-export so benches can `use criterion::black_box` like upstream.
pub use std::hint::black_box;

/// Times one benchmark's closure.
#[derive(Debug, Default)]
pub struct Bencher {
    per_iter_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean time per call for the
    /// current sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Estimate a batch size that fills the sample target.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.per_iter_ns = start.elapsed().as_nanos() as f64 / batch as f64;
    }
}

/// One benchmark's summarised result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/name` or bare name).
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
}

/// The harness entry point handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        let m = run_one(name, sample_size, f);
        self.results.push(m);
        self
    }

    /// Opens a named group; group settings apply to its benches only.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

/// Scoped benchmark group (named prefix + per-group sample size).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = format!("{}/{name}", self.name);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let m = run_one(&id, samples, f);
        self.parent.results.push(m);
        self
    }

    /// Ends the group (kept for API compatibility; results already live on
    /// the parent `Criterion`).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) -> Measurement {
    let mut b = Bencher::default();
    // Warm-up: run until the budget is spent so caches/branch predictors
    // settle before sampling.
    let warm_start = Instant::now();
    while warm_start.elapsed() < WARMUP_TARGET {
        f(&mut b);
    }
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut b);
        times.push(b.per_iter_ns);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_ns = times[times.len() / 2];
    println!("{id:<40} median {:>12} /iter", format_ns(median_ns));
    Measurement {
        id: id.to_string(),
        median_ns,
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        group.finish();
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].id, "g/spin");
        assert!(c.results()[0].median_ns > 0.0);
    }

    #[test]
    fn ns_formatting() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5.0e3).ends_with("µs"));
        assert!(format_ns(5.0e6).ends_with("ms"));
        assert!(format_ns(5.0e9).ends_with('s'));
    }
}
