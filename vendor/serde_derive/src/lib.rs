//! No-op `Serialize` / `Deserialize` derives for the vendored serde facade.
//!
//! The workspace derives serde traits on its public data types so that a
//! real serde can be dropped in when the build environment has registry
//! access. Offline, the derives must still *parse* — so these macros accept
//! the input and expand to nothing. No serialization code is generated and
//! none is used anywhere in the workspace.

use proc_macro::TokenStream;

/// Accepts any derive input and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts any derive input and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
